"""Figure 8 reproduction: CXK-means vs. PK-means runtimes (and accuracy).

Fig. 8 compares the collaborative CXK-means with the adapted, non-
collaborative PK-means baseline on DBLP and IEEE (structure/content-driven
setting, equal partitioning) as the number of peers grows.  The expected
shape: the two algorithms are comparable on small networks, and PK-means
degrades on larger ones because of its all-to-all exchange of local
representatives; accuracy is essentially the same, with CXK-means slightly
ahead (+0.03 on average in the paper).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence

from repro.core.partition import PartitioningScheme
from repro.evaluation.reporting import format_series, format_table
from repro.experiments.runner import ExperimentSweep, pivot
from repro.network.costmodel import CostModel


@dataclass
class Figure8Config:
    """Parameters of the Fig. 8 comparison."""

    datasets: Sequence[str] = ("DBLP", "IEEE")
    node_counts: Sequence[int] = (1, 3, 5, 7, 9, 11)
    goal: str = "hybrid"
    gamma: float = 0.85
    scale: float = 1.0
    f_values: Sequence[float] = (0.5,)
    seeds: Sequence[int] = (0,)
    max_iterations: int = 6
    cost_model: CostModel = field(default_factory=CostModel)
    #: Similarity backend spec driving the clustering hot path
    #: (``"python"``, ``"numpy[:block=N]"``, ``"sharded[:workers[:inner]]"``
    #: or ``"torch[:device][:block=N]"``).
    backend: str = "python"
    #: Tile budget (items per side) of the batched similarity kernels
    #: (``None`` = backend default, ``0`` = unbounded; see
    #: :attr:`repro.core.config.ClusteringConfig.batch_block_items`).
    batch_block_items: Optional[int] = None
    #: Worker processes for cluster-sharded representative refinement
    #: (``None`` keeps the serial refinement path).
    refine_workers: Optional[int] = None
    #: Directory of the persistent compiled-corpus store (``None`` = off).
    corpus_cache_dir: Optional[str] = None


@dataclass
class Figure8Result:
    """Runtime and accuracy of both algorithms per dataset and node count."""

    #: {dataset: {algorithm: {nodes: simulated seconds}}}
    runtime: Dict[str, Dict[str, Dict[int, float]]]
    #: {dataset: {algorithm: {nodes: F-measure}}}
    accuracy: Dict[str, Dict[str, Dict[int, float]]]
    #: {dataset: {algorithm: {nodes: transferred transactions}}}
    traffic: Dict[str, Dict[str, Dict[int, float]]]

    # ------------------------------------------------------------------ #
    def accuracy_advantage(self) -> float:
        """Mean F-measure advantage of CXK-means over PK-means (paper: ~0.03)."""
        deltas: List[float] = []
        for dataset, per_algo in self.accuracy.items():
            cxk = per_algo.get("CXK-means", {})
            pk = per_algo.get("PK-means", {})
            for nodes in cxk:
                if nodes in pk:
                    deltas.append(cxk[nodes] - pk[nodes])
        return sum(deltas) / len(deltas) if deltas else 0.0

    def report(self) -> str:
        """Render runtime series and the accuracy comparison table."""
        blocks: List[str] = []
        for dataset, per_algo in self.runtime.items():
            for algorithm, series in per_algo.items():
                blocks.append(
                    format_series(
                        series,
                        x_label="nodes",
                        y_label="seconds",
                        title=f"Figure 8 -- {dataset}: {algorithm} runtime vs. nodes",
                    )
                )
        rows = []
        for dataset, per_algo in self.accuracy.items():
            for algorithm, series in per_algo.items():
                for nodes in sorted(series):
                    rows.append([dataset, algorithm, nodes, series[nodes]])
        blocks.append(
            format_table(
                ["dataset", "algorithm", "nodes", "F-measure"],
                rows,
                title=(
                    "Figure 8 companion -- accuracy "
                    f"(CXK advantage: {self.accuracy_advantage():+.3f})"
                ),
            )
        )
        return "\n\n".join(blocks)


def run_figure8(config: Optional[Figure8Config] = None) -> Figure8Result:
    """Run the CXK-means vs. PK-means comparison."""
    config = config or Figure8Config()
    runtime: Dict[str, Dict[str, Dict[int, float]]] = {}
    accuracy: Dict[str, Dict[str, Dict[int, float]]] = {}
    traffic: Dict[str, Dict[str, Dict[int, float]]] = {}
    for algorithm, label in (("cxk", "CXK-means"), ("pk", "PK-means")):
        sweep = ExperimentSweep(
            datasets=config.datasets,
            goal=config.goal,
            node_counts=config.node_counts,
            scheme=PartitioningScheme.EQUAL,
            algorithm=algorithm,
            gamma=config.gamma,
            scale=config.scale,
            f_values=config.f_values,
            seeds=config.seeds,
            max_iterations=config.max_iterations,
            cost_model=config.cost_model,
            backend=config.backend,
            batch_block_items=config.batch_block_items,
            refine_workers=config.refine_workers,
            corpus_cache_dir=config.corpus_cache_dir,
        )
        aggregates = sweep.run()
        for dataset, series in pivot(aggregates, value="simulated_seconds").items():
            runtime.setdefault(dataset, {})[label] = series
        for dataset, series in pivot(aggregates, value="f_measure").items():
            accuracy.setdefault(dataset, {})[label] = series
        for dataset, series in pivot(
            aggregates, value="transferred_transactions"
        ).items():
            traffic.setdefault(dataset, {})[label] = series
    return Figure8Result(runtime=runtime, accuracy=accuracy, traffic=traffic)
