"""Persistent, mmap-backed compiled-corpus store.

Compiling a corpus into the :class:`~repro.similarity.backend.NumpyBackend`
feature blocks (tag-path matrix, per-item id arrays, content-class
registries) is the dominant fixed cost of every clustering run -- and
historically it was paid once *per process, per run*: each multiprocessing
worker rebuilt the compiled corpus from pickled ``Transaction`` lists.  The
store exports one compilation to a fingerprinted on-disk layout that any
number of later processes attach with ``np.load(mmap_mode="r")``, so N
processes share one set of page-cache pages instead of holding N private
compilations.

On-disk layout (one directory per fingerprint under the cache root)::

    <cache_dir>/<fingerprint[:16]>/
        manifest.json          # format version, fingerprint, counts (LAST)
        tp_matrix.npy          # (P, P) float64 structural-similarity matrix
        item_tag_path_ids.npy  # (I,) int64, corpus items in corpus order
        item_content_ids.npy   # (I,) int64, dense first-occurrence classes
        item_uids.npy          # (I,) int64, canonical item identifiers
        tx_spans.npy           # (T+1,) int64 item offsets per transaction
        tag_paths.json         # tag-path registry (list of step lists)
        transactions.pkl       # pickled corpus (worker-side attach only)

The manifest is written last, so a crash mid-save leaves a directory that
:meth:`CorpusStore.load` rejects (and the next run recompiles and
overwrites).  Staleness is handled entirely through the fingerprint: the
content hash covers the transactions (ids, paths, answers, terms, TCU
vectors), the similarity configuration and :data:`STORE_FORMAT_VERSION`,
so changed data, a changed ``(f, gamma)`` or a bumped store format each
land in a different directory and force a recompile.

The arrays reproduce a fresh :meth:`NumpyBackend.compile_corpus` of the
same corpus *exactly* (identifiers are assigned in the same
first-occurrence order, matrix entries come from the same pure
``TagPathSimilarityCache.similarity`` floats), which is what makes the
attach path bit-exact with the fresh-compile path.

Block-structured chains (streaming ingestion)
---------------------------------------------
:class:`BlockCorpusStore` is the append-only sibling used by the streaming
ingestion path (:mod:`repro.core.streaming`): instead of one monolithic
compilation it grows a chain of numbered immutable blocks, each carrying
its own ``.npy`` arrays, span table and pickled transactions::

    <directory>/
        chain.json             # chain manifest, rewritten LAST per append
        block-00000/
            block.json         # per-block manifest, written LAST in block
            tp_rows.npy        # new matrix rows: (new_paths, total_paths)
            item_tag_path_ids.npy / item_content_ids.npy / item_uids.npy
            tx_spans.npy       # block-local item offsets
            tag_paths.json     # only the tag paths first seen in this block
            transactions.pkl   # only this block's transactions

Registries continue *across* blocks (global first-occurrence ids), so
:meth:`BlockCorpusStore.append_block` compiles exactly the delta and a
multi-block attach reconstructs the full compiled corpus without
recompiling any earlier block.  The chain fingerprint is a rolling hash
over the per-block content hashes.  Crash safety is two-staged: a block
directory without its ``block.json`` (torn write) or a complete block not
yet listed in ``chain.json`` is invisible to :meth:`BlockCorpusStore.open`
/ attach and is repaired (removed, then rewritten) by the next append.
"""

from __future__ import annotations

import hashlib
import json
import os
import pickle
import shutil
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.similarity.backend import NumpyBackend, _load_numpy
from repro.similarity.item import SimilarityConfig
from repro.transactions.transaction import Transaction
from repro.xmlmodel.paths import XMLPath

#: Version of the on-disk layout; part of the fingerprint *and* checked in
#: the manifest, so bumping it invalidates every existing store directory.
STORE_FORMAT_VERSION = 1

#: Name of the manifest file (written last for crash safety).
MANIFEST_NAME = "manifest.json"

#: The memmap-attached array blocks of a store directory.
ARRAY_NAMES = (
    "tp_matrix",
    "item_tag_path_ids",
    "item_content_ids",
    "item_uids",
    "tx_spans",
)

#: Version of the block-chain layout; recorded in (and checked against)
#: every chain manifest, and folded into the rolling chain fingerprint.
BLOCK_FORMAT_VERSION = 1

#: Name of the chain manifest (rewritten last on every append).
CHAIN_MANIFEST_NAME = "chain.json"

#: Name of the per-block manifest (written last within each block).
BLOCK_MANIFEST_NAME = "block.json"

#: The per-item id arrays every block carries (the matrix travels as
#: ``tp_rows`` strips instead of a full ``tp_matrix``).
BLOCK_ARRAY_NAMES = (
    "tp_rows",
    "item_tag_path_ids",
    "item_content_ids",
    "item_uids",
    "tx_spans",
)


class CorpusStoreError(RuntimeError):
    """A store directory is absent, incomplete, corrupted or incompatible."""


def corpus_fingerprint(
    transactions: Sequence[Transaction], similarity: SimilarityConfig
) -> str:
    """Content hash of (corpus, similarity config, store format version).

    Hashes the *value* of every transaction -- ids, path steps, answers,
    terms and the ordered TCU term/weight pairs (exactly the information
    the compiled arrays are derived from) -- via ``repr``, which is purely
    value-based: floats render as their shortest round-trip form and tuples
    render element-wise, so two equal corpora hash identically regardless
    of object aliasing (unlike ``pickle``, whose memoisation encodes
    sharing structure and lazily cached fields).

    Integer *term identifiers* are the one per-process artifact in a
    transaction: the vocabulary assigns them in hash-randomised set order,
    so the same corpus carries a different (but bijective) term numbering
    in every process -- a numbering the compiled arrays never encode (item
    equality, content classes and cosine values are all invariant under
    it).  The fingerprint therefore relabels term ids by first occurrence
    in corpus order, which is process-independent because vector insertion
    order follows the generation text, not the id values.
    """
    digest = hashlib.sha256()
    digest.update(f"repro-corpus-store/{STORE_FORMAT_VERSION}".encode("utf-8"))
    digest.update(b"\x00")
    digest.update(repr((similarity.f, similarity.gamma)).encode("utf-8"))
    canonical_terms: Dict[int, int] = {}

    def canonical_vector(vector) -> tuple:
        pairs = []
        for term, weight in vector.items():
            canonical = canonical_terms.get(term)
            if canonical is None:
                canonical = len(canonical_terms)
                canonical_terms[term] = canonical
            pairs.append((canonical, weight))
        return tuple(pairs)

    for transaction in transactions:
        digest.update(b"\x00")
        digest.update(
            repr(
                (
                    transaction.transaction_id,
                    transaction.doc_id,
                    transaction.tuple_id,
                    [
                        (
                            item.item_id,
                            item.path.steps,
                            item.answer,
                            item.terms,
                            canonical_vector(item.vector),
                        )
                        for item in transaction.items
                    ],
                )
            ).encode("utf-8")
        )
    return digest.hexdigest()


def store_directory(cache_dir, fingerprint: str) -> Path:
    """The store directory for *fingerprint* under the cache root."""
    return Path(cache_dir) / fingerprint[:16]


class CorpusStore:
    """Handle to one fingerprinted store directory.

    Construct through :meth:`save` (export a freshly compiled corpus) or
    :meth:`load` (validate an existing directory); attach to a backend with
    :meth:`attach`.  Array blocks are loaded lazily with
    ``np.load(mmap_mode="r")`` and cached on the handle, so attaching costs
    page-table setup rather than a read of the data.
    """

    def __init__(self, directory: Path, manifest: Dict[str, object]) -> None:
        self._directory = Path(directory)
        self._manifest = manifest
        self._arrays: Optional[Dict[str, object]] = None
        self._tag_paths: Optional[List[XMLPath]] = None
        self._transactions: Optional[List[Transaction]] = None
        self._row_index: Optional[Dict[Transaction, int]] = None

    # ------------------------------------------------------------------ #
    @property
    def directory(self) -> Path:
        """The store directory this handle points at."""
        return self._directory

    @property
    def fingerprint(self) -> str:
        """The full corpus fingerprint recorded in the manifest."""
        return str(self._manifest["fingerprint"])

    @property
    def manifest(self) -> Dict[str, object]:
        """The parsed manifest (format version, fingerprint, counts)."""
        return self._manifest

    # ------------------------------------------------------------------ #
    # Save / load
    # ------------------------------------------------------------------ #
    @classmethod
    def save(
        cls,
        directory,
        transactions: Sequence[Transaction],
        similarity: SimilarityConfig,
        cache,
        fingerprint: Optional[str] = None,
    ) -> "CorpusStore":
        """Export a canonical compilation of *transactions* to *directory*.

        The registries are recomputed from scratch in corpus order -- the
        same first-occurrence insertion order a fresh backend compiling
        exactly this corpus would produce -- rather than copied from a live
        backend, whose registries may carry extra entries from
        representative compiles.  Matrix entries come from
        ``cache.similarity`` (the pure tag-path similarity the backends
        share), so the stored floats equal the fresh-compile floats bit for
        bit.  The manifest is written last; a crash mid-save therefore
        leaves a directory that :meth:`load` rejects.
        """
        np = _load_numpy()
        transactions = list(transactions)
        if fingerprint is None:
            fingerprint = corpus_fingerprint(transactions, similarity)
        tag_paths: List[XMLPath] = []
        tag_index: Dict[XMLPath, int] = {}
        content_index: Dict[tuple, int] = {}
        uid_index: Dict[object, int] = {}
        tp_ids: List[int] = []
        content_ids: List[int] = []
        uids: List[int] = []
        spans: List[int] = [0]
        content_key = NumpyBackend._content_key
        for transaction in transactions:
            for item in transaction.items:
                tag_path = item.tag_path
                tag_id = tag_index.get(tag_path)
                if tag_id is None:
                    tag_id = len(tag_paths)
                    tag_index[tag_path] = tag_id
                    tag_paths.append(tag_path)
                key = content_key(item)
                content_id = content_index.get(key)
                if content_id is None:
                    content_id = len(content_index)
                    content_index[key] = content_id
                uid = uid_index.get(item)
                if uid is None:
                    uid = len(uid_index)
                    uid_index[item] = uid
                tp_ids.append(tag_id)
                content_ids.append(content_id)
                uids.append(uid)
            spans.append(len(tp_ids))
        size = len(tag_paths)
        matrix = np.empty((size, size), dtype=np.float64)
        similarity_of = cache.similarity
        for i in range(size):
            path_i = tag_paths[i]
            for j in range(i, size):
                value = similarity_of(path_i, tag_paths[j])
                matrix[i, j] = value
                matrix[j, i] = value

        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        arrays = {
            "tp_matrix": matrix,
            "item_tag_path_ids": np.asarray(tp_ids, dtype=np.int64),
            "item_content_ids": np.asarray(content_ids, dtype=np.int64),
            "item_uids": np.asarray(uids, dtype=np.int64),
            "tx_spans": np.asarray(spans, dtype=np.int64),
        }
        for name, array in arrays.items():
            np.save(directory / f"{name}.npy", array)
        with open(directory / "tag_paths.json", "w", encoding="utf-8") as handle:
            json.dump([list(path.steps) for path in tag_paths], handle)
        with open(directory / "transactions.pkl", "wb") as handle:
            pickle.dump(transactions, handle, protocol=pickle.HIGHEST_PROTOCOL)
        manifest = {
            "format_version": STORE_FORMAT_VERSION,
            "fingerprint": fingerprint,
            "similarity": {"f": similarity.f, "gamma": similarity.gamma},
            "counts": {
                "transactions": len(transactions),
                "items": len(tp_ids),
                "tag_paths": size,
                "content_classes": len(content_index),
            },
            "arrays": [f"{name}.npy" for name in ARRAY_NAMES],
        }
        # last write: the manifest's presence marks the directory complete
        with open(directory / MANIFEST_NAME, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=2, sort_keys=True)
            handle.write("\n")
        store = cls(directory, manifest)
        store._transactions = transactions
        _STORE_CACHE[str(directory)] = store
        return store

    @classmethod
    def load(cls, directory) -> "CorpusStore":
        """Validate *directory* and return a handle to it.

        Raises :class:`CorpusStoreError` when the manifest is absent or
        unreadable (including half-written crash leftovers), records a
        different :data:`STORE_FORMAT_VERSION`, or any array/registry file
        named by the layout is missing.
        """
        directory = Path(directory)
        manifest_path = directory / MANIFEST_NAME
        try:
            with open(manifest_path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
        except (OSError, ValueError) as error:
            raise CorpusStoreError(
                f"cannot read corpus-store manifest {manifest_path}: {error}"
            ) from error
        if not isinstance(manifest, dict):
            raise CorpusStoreError(
                f"corpus-store manifest {manifest_path} is not an object"
            )
        version = manifest.get("format_version")
        if version != STORE_FORMAT_VERSION:
            raise CorpusStoreError(
                f"corpus store {directory} has format version {version!r}, "
                f"expected {STORE_FORMAT_VERSION}"
            )
        fingerprint = manifest.get("fingerprint")
        if not isinstance(fingerprint, str) or not fingerprint:
            raise CorpusStoreError(
                f"corpus store {directory} has no fingerprint"
            )
        missing = [
            name
            for name in [f"{name}.npy" for name in ARRAY_NAMES]
            + ["tag_paths.json", "transactions.pkl"]
            if not (directory / name).exists()
        ]
        if missing:
            raise CorpusStoreError(
                f"corpus store {directory} is missing {', '.join(missing)}"
            )
        return cls(directory, manifest)

    # ------------------------------------------------------------------ #
    # Lazy attached resources
    # ------------------------------------------------------------------ #
    def arrays(self) -> Dict[str, object]:
        """The array blocks, memmap-attached read-only and cached.

        ``np.load(mmap_mode="r")`` maps the ``.npy`` payloads copy-on-read:
        every process attaching the same store shares one set of page-cache
        pages, which is the whole point of the store.
        """
        if self._arrays is None:
            np = _load_numpy()
            loaded: Dict[str, object] = {}
            for name in ARRAY_NAMES:
                path = self._directory / f"{name}.npy"
                try:
                    loaded[name] = np.load(path, mmap_mode="r")
                except (OSError, ValueError) as error:
                    raise CorpusStoreError(
                        f"cannot attach corpus-store array {path}: {error}"
                    ) from error
            self._arrays = loaded
        return self._arrays

    def tag_paths(self) -> List[XMLPath]:
        """The tag-path registry, in stored (first-occurrence) order."""
        if self._tag_paths is None:
            path = self._directory / "tag_paths.json"
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    steps_lists = json.load(handle)
            except (OSError, ValueError) as error:
                raise CorpusStoreError(
                    f"cannot read corpus-store tag paths {path}: {error}"
                ) from error
            self._tag_paths = [XMLPath(tuple(steps)) for steps in steps_lists]
        return self._tag_paths

    def bind_transactions(self, transactions: Sequence[Transaction]) -> None:
        """Adopt the caller's live corpus list instead of unpickling.

        Used on the attach path when the attaching process already holds
        the corpus (the usual case outside pool workers), so
        :meth:`transactions` / :meth:`row_index` never touch
        ``transactions.pkl`` there.
        """
        self._transactions = list(transactions)
        self._row_index = None

    def transactions(self) -> List[Transaction]:
        """The stored corpus, unpickled on first use (workers) and cached."""
        if self._transactions is None:
            path = self._directory / "transactions.pkl"
            try:
                with open(path, "rb") as handle:
                    self._transactions = pickle.load(handle)
            except (OSError, pickle.UnpicklingError, EOFError) as error:
                raise CorpusStoreError(
                    f"cannot read corpus-store transactions {path}: {error}"
                ) from error
        return self._transactions

    def row_index(self) -> Dict[Transaction, int]:
        """Mapping from corpus transaction (by value) to its row number."""
        if self._row_index is None:
            self._row_index = {
                transaction: row
                for row, transaction in enumerate(self.transactions())
            }
        return self._row_index

    def attach(self, backend, transactions: Optional[Sequence[Transaction]] = None) -> bool:
        """Attach this store to *backend* (``backend.attach_store``).

        Returns True when the backend zero-copy-attached the array blocks,
        False when it only kept the handle (already-compiled engines and
        backends without compiled corpora).
        """
        attach = getattr(backend, "attach_store", None)
        if attach is None:
            return False
        return bool(attach(self, transactions))


# --------------------------------------------------------------------------- #
# Block-structured append-only chains (streaming ingestion)
# --------------------------------------------------------------------------- #
def _block_name(index: int) -> str:
    """Directory name of block *index* (``block-00000`` style)."""
    return f"block-{index:05d}"


def chain_base_fingerprint(similarity: SimilarityConfig) -> str:
    """Seed of the rolling chain hash: layout version + similarity config."""
    digest = hashlib.sha256()
    digest.update(f"repro-block-chain/{BLOCK_FORMAT_VERSION}".encode("utf-8"))
    digest.update(b"\x00")
    digest.update(repr((similarity.f, similarity.gamma)).encode("utf-8"))
    return digest.hexdigest()


def roll_chain_fingerprint(previous: str, block_fingerprint: str) -> str:
    """One step of the rolling chain hash.

    ``h_i = sha256(h_{i-1} || fp(block_i))`` -- the chain fingerprint
    therefore commits to the whole block sequence (content *and* chunking),
    and appending a block is an O(1) fingerprint update instead of a
    re-hash of the accumulated corpus.
    """
    digest = hashlib.sha256()
    digest.update(previous.encode("utf-8"))
    digest.update(b"\x00")
    digest.update(block_fingerprint.encode("utf-8"))
    return digest.hexdigest()


class BlockCorpusStore:
    """Append-only chain of immutable compiled-corpus blocks.

    Create an empty chain with :meth:`create`, reopen an existing one with
    :meth:`open`, grow it one immutable block at a time with
    :meth:`append_block`.  The handle duck-types the monolithic
    :class:`CorpusStore` interface (``arrays`` / ``tag_paths`` /
    ``transactions`` / ``row_index`` / ``attach`` / ``fingerprint`` /
    ``directory``), so backends, refinement-shard workers and the model
    store consume a chain exactly like a monolithic store -- without ever
    recompiling earlier blocks: an attach re-assembles the full matrix
    from the per-block row strips and concatenates the per-item id arrays
    (which were compiled exactly once, when their block was appended).

    Out-of-core friendliness: :meth:`iter_transaction_blocks` and
    :meth:`resolve_rows` load one block's pickled transactions at a time
    without caching the whole corpus on the handle, so a streaming caller
    can keep only the active tail in process memory while older blocks
    stay on disk.
    """

    def __init__(self, directory, similarity: SimilarityConfig, manifest: Dict[str, object]) -> None:
        self._directory = Path(directory)
        self._similarity = similarity
        self._manifest = manifest
        # cumulative compile registries (continued across appends); rebuilt
        # lazily from the stored blocks after a cold open
        self._tag_paths: Optional[List[XMLPath]] = None
        self._tag_index: Optional[Dict[XMLPath, int]] = None
        self._content_index: Optional[Dict[tuple, int]] = None
        self._uid_index: Optional[Dict[object, int]] = None
        # lazily assembled full-corpus views (invalidated by append_block)
        self._arrays: Optional[Dict[str, object]] = None
        self._transactions: Optional[List[Transaction]] = None
        self._row_index: Optional[Dict[Transaction, int]] = None

    # ------------------------------------------------------------------ #
    @property
    def directory(self) -> Path:
        """The chain directory this handle points at."""
        return self._directory

    @property
    def manifest(self) -> Dict[str, object]:
        """The parsed chain manifest (version, fingerprint, block list)."""
        return self._manifest

    @property
    def fingerprint(self) -> str:
        """The rolling chain fingerprint over the current block sequence."""
        return str(self._manifest["fingerprint"])

    @property
    def similarity(self) -> SimilarityConfig:
        """The similarity configuration the chain was compiled under."""
        return self._similarity

    @property
    def blocks(self) -> List[Dict[str, object]]:
        """The chain manifest's block records, in chain order."""
        return list(self._manifest["blocks"])

    @property
    def transaction_count(self) -> int:
        """Total transactions across every block of the chain."""
        return sum(int(block["transactions"]) for block in self.blocks)

    @property
    def item_count(self) -> int:
        """Total items across every block of the chain."""
        return sum(int(block["items"]) for block in self.blocks)

    # ------------------------------------------------------------------ #
    # Create / open
    # ------------------------------------------------------------------ #
    @classmethod
    def create(cls, directory, similarity: SimilarityConfig) -> "BlockCorpusStore":
        """Initialise an empty chain at *directory* (manifest written last)."""
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        manifest: Dict[str, object] = {
            "format_version": BLOCK_FORMAT_VERSION,
            "similarity": {"f": similarity.f, "gamma": similarity.gamma},
            "fingerprint": chain_base_fingerprint(similarity),
            "blocks": [],
        }
        store = cls(directory, similarity, manifest)
        store._tag_paths, store._tag_index = [], {}
        store._content_index, store._uid_index = {}, {}
        store._write_chain_manifest()
        return store

    @classmethod
    def open(cls, directory) -> "BlockCorpusStore":
        """Validate the chain at *directory* and return a handle.

        Only blocks listed in ``chain.json`` are part of the chain: a
        torn append (block directory present but unlisted, or listed
        files half-written) either never becomes visible or raises
        :class:`CorpusStoreError` here.
        """
        directory = Path(directory)
        manifest_path = directory / CHAIN_MANIFEST_NAME
        try:
            with open(manifest_path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
        except (OSError, ValueError) as error:
            raise CorpusStoreError(
                f"cannot read block-chain manifest {manifest_path}: {error}"
            ) from error
        if not isinstance(manifest, dict) or not isinstance(
            manifest.get("blocks"), list
        ):
            raise CorpusStoreError(
                f"block-chain manifest {manifest_path} is not a chain object"
            )
        version = manifest.get("format_version")
        if version != BLOCK_FORMAT_VERSION:
            raise CorpusStoreError(
                f"block chain {directory} has format version {version!r}, "
                f"expected {BLOCK_FORMAT_VERSION}"
            )
        similarity_doc = manifest.get("similarity")
        if not isinstance(similarity_doc, dict):
            raise CorpusStoreError(f"block chain {directory} has no similarity config")
        similarity = SimilarityConfig(
            f=float(similarity_doc["f"]), gamma=float(similarity_doc["gamma"])
        )
        for block in manifest["blocks"]:
            block_dir = directory / str(block["name"])
            if not (block_dir / BLOCK_MANIFEST_NAME).exists():
                raise CorpusStoreError(
                    f"block chain {directory} lists {block['name']} but its "
                    f"{BLOCK_MANIFEST_NAME} is missing"
                )
            missing = [
                name
                for name in [f"{name}.npy" for name in BLOCK_ARRAY_NAMES]
                + ["tag_paths.json", "transactions.pkl"]
                if not (block_dir / name).exists()
            ]
            if missing:
                raise CorpusStoreError(
                    f"block {block_dir} is missing {', '.join(missing)}"
                )
        return cls(directory, similarity, manifest)

    def refresh(self) -> bool:
        """Adopt blocks appended to the chain by other handles/processes.

        Re-reads ``chain.json`` (atomically replaced by every append, so
        the read is always consistent) and, when the chain advanced,
        extends this handle's cumulative registries and cached corpus by
        walking only the *new* blocks; the assembled array view is
        invalidated.  A no-op read costs one small JSON load -- cheap
        enough that :func:`cached_store` refreshes on every lookup, which
        is how long-lived worker handles see a streaming writer's
        appends.  Returns True when new blocks were adopted.
        """
        manifest_path = self._directory / CHAIN_MANIFEST_NAME
        try:
            with open(manifest_path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
        except (OSError, ValueError):
            return False
        if not isinstance(manifest, dict) or not isinstance(
            manifest.get("blocks"), list
        ):
            return False
        if manifest.get("fingerprint") == self._manifest.get("fingerprint"):
            return False
        old_blocks = self._manifest["blocks"]
        old_count = len(old_blocks)
        appended = (
            len(manifest["blocks"]) > old_count
            and [b["name"] for b in manifest["blocks"][:old_count]]
            == [b["name"] for b in old_blocks]
        )
        self._manifest = manifest
        self._arrays = None
        if not appended:
            # the chain diverged (rewritten from scratch); drop everything
            self._tag_paths = self._tag_index = None
            self._content_index = self._uid_index = None
            self._transactions = None
            self._row_index = None
            return True
        new_range = range(old_count, len(manifest["blocks"]))
        if self._tag_paths is not None:
            content_key = NumpyBackend._content_key
            for index in new_range:
                for tag_path in self._block_tag_paths(index):
                    self._tag_index[tag_path] = len(self._tag_paths)
                    self._tag_paths.append(tag_path)
                for transaction in self._load_block_transactions(index):
                    for item in transaction.items:
                        key = content_key(item)
                        if key not in self._content_index:
                            self._content_index[key] = len(self._content_index)
                        if item not in self._uid_index:
                            self._uid_index[item] = len(self._uid_index)
        if self._transactions is not None:
            for index in new_range:
                self._transactions.extend(self._load_block_transactions(index))
            self._row_index = None
        return True

    def _write_chain_manifest(self) -> None:
        """Rewrite ``chain.json`` atomically (temp file + rename, last step)."""
        path = self._directory / CHAIN_MANIFEST_NAME
        temporary = self._directory / (CHAIN_MANIFEST_NAME + ".tmp")
        with open(temporary, "w", encoding="utf-8") as handle:
            json.dump(self._manifest, handle, indent=2, sort_keys=True)
            handle.write("\n")
        os.replace(temporary, path)

    # ------------------------------------------------------------------ #
    # Append
    # ------------------------------------------------------------------ #
    def repair(self) -> List[str]:
        """Remove torn block directories (present on disk, not in the chain).

        A crash during :meth:`append_block` can leave a half-written block
        (its ``block.json`` missing) or a complete block the chain
        manifest never adopted.  Both are invisible to :meth:`open` /
        attach; this removes them so the next append rewrites the slot
        cleanly.  Returns the removed directory names.
        """
        listed = {str(block["name"]) for block in self.blocks}
        removed: List[str] = []
        for entry in sorted(self._directory.glob("block-*")):
            if entry.is_dir() and entry.name not in listed:
                shutil.rmtree(entry, ignore_errors=True)
                removed.append(entry.name)
        return removed

    def _ensure_registries(self) -> None:
        """Rebuild the cumulative compile registries after a cold open.

        Walks the stored blocks once, in chain order: tag paths come from
        the per-block registries (no similarity recompute), uid / content
        ids are re-derived from the pickled transactions with the same
        first-occurrence rule that assigned them -- so the registries a
        warm handle would have carried are reproduced exactly, and the
        next append continues the global numbering seamlessly.
        """
        if self._tag_paths is not None:
            return
        tag_paths: List[XMLPath] = []
        content_index: Dict[tuple, int] = {}
        uid_index: Dict[object, int] = {}
        content_key = NumpyBackend._content_key
        for index in range(len(self.blocks)):
            tag_paths.extend(self._block_tag_paths(index))
            for transaction in self._load_block_transactions(index):
                for item in transaction.items:
                    key = content_key(item)
                    if key not in content_index:
                        content_index[key] = len(content_index)
                    if item not in uid_index:
                        uid_index[item] = len(uid_index)
        self._tag_paths = tag_paths
        self._tag_index = {path: i for i, path in enumerate(tag_paths)}
        self._content_index = content_index
        self._uid_index = uid_index

    def append_block(
        self, transactions: Sequence[Transaction], cache
    ) -> Dict[str, object]:
        """Compile *transactions* into the next immutable block.

        Only the delta is compiled: new tag paths / content classes / item
        uids extend the cumulative registries in first-occurrence order
        (the numbering a monolithic compile of the concatenated corpus
        would assign), and the structural matrix grows by the new paths'
        row strip -- ``cache.similarity`` is evaluated for new-path pairs
        only, never for earlier blocks.  The block directory is written
        first (its ``block.json`` last within it), then the chain manifest
        adopts it; torn leftovers from a previous crash are repaired
        before writing.  Returns the new block's manifest record.
        """
        np = _load_numpy()
        transactions = list(transactions)
        self._ensure_registries()
        self.repair()

        tag_paths = self._tag_paths
        tag_index = self._tag_index
        content_index = self._content_index
        uid_index = self._uid_index
        content_key = NumpyBackend._content_key
        paths_before = len(tag_paths)
        new_paths: List[XMLPath] = []
        tp_ids: List[int] = []
        content_ids: List[int] = []
        uids: List[int] = []
        spans: List[int] = [0]
        for transaction in transactions:
            for item in transaction.items:
                tag_path = item.tag_path
                tag_id = tag_index.get(tag_path)
                if tag_id is None:
                    tag_id = len(tag_paths)
                    tag_index[tag_path] = tag_id
                    tag_paths.append(tag_path)
                    new_paths.append(tag_path)
                key = content_key(item)
                content_id = content_index.get(key)
                if content_id is None:
                    content_id = len(content_index)
                    content_index[key] = content_id
                uid = uid_index.get(item)
                if uid is None:
                    uid = len(uid_index)
                    uid_index[item] = uid
                tp_ids.append(tag_id)
                content_ids.append(content_id)
                uids.append(uid)
            spans.append(len(tp_ids))

        total_paths = len(tag_paths)
        strip = np.empty((len(new_paths), total_paths), dtype=np.float64)
        similarity_of = cache.similarity
        for i, path_i in enumerate(new_paths):
            for j in range(total_paths):
                strip[i, j] = similarity_of(path_i, tag_paths[j])

        index = len(self.blocks)
        block_dir = self._directory / _block_name(index)
        block_dir.mkdir(parents=True, exist_ok=True)
        arrays = {
            "tp_rows": strip,
            "item_tag_path_ids": np.asarray(tp_ids, dtype=np.int64),
            "item_content_ids": np.asarray(content_ids, dtype=np.int64),
            "item_uids": np.asarray(uids, dtype=np.int64),
            "tx_spans": np.asarray(spans, dtype=np.int64),
        }
        for name, array in arrays.items():
            np.save(block_dir / f"{name}.npy", array)
        with open(block_dir / "tag_paths.json", "w", encoding="utf-8") as handle:
            json.dump([list(path.steps) for path in new_paths], handle)
        with open(block_dir / "transactions.pkl", "wb") as handle:
            pickle.dump(transactions, handle, protocol=pickle.HIGHEST_PROTOCOL)
        block_fingerprint = corpus_fingerprint(transactions, self._similarity)
        record: Dict[str, object] = {
            "name": _block_name(index),
            "fingerprint": block_fingerprint,
            "transactions": len(transactions),
            "items": len(tp_ids),
            "new_tag_paths": len(new_paths),
            "tag_paths_total": total_paths,
        }
        # last write inside the block: its presence marks the block complete
        with open(block_dir / BLOCK_MANIFEST_NAME, "w", encoding="utf-8") as handle:
            json.dump(record, handle, indent=2, sort_keys=True)
            handle.write("\n")

        self._manifest["blocks"].append(record)
        self._manifest["fingerprint"] = roll_chain_fingerprint(
            self.fingerprint if index else chain_base_fingerprint(self._similarity),
            block_fingerprint,
        )
        # adopting the block into the chain is the final, atomic step
        self._write_chain_manifest()
        # invalidate the assembled full-corpus views
        self._arrays = None
        if self._transactions is not None:
            self._transactions = self._transactions + transactions
            self._row_index = None
        return record

    # ------------------------------------------------------------------ #
    # Per-block resources
    # ------------------------------------------------------------------ #
    def _block_dir(self, index: int) -> Path:
        return self._directory / str(self.blocks[index]["name"])

    def _block_tag_paths(self, index: int) -> List[XMLPath]:
        path = self._block_dir(index) / "tag_paths.json"
        try:
            with open(path, "r", encoding="utf-8") as handle:
                steps_lists = json.load(handle)
        except (OSError, ValueError) as error:
            raise CorpusStoreError(
                f"cannot read block tag paths {path}: {error}"
            ) from error
        return [XMLPath(tuple(steps)) for steps in steps_lists]

    def _load_block_transactions(self, index: int) -> List[Transaction]:
        """One block's pickled transactions, loaded fresh (never cached)."""
        path = self._block_dir(index) / "transactions.pkl"
        try:
            with open(path, "rb") as handle:
                return pickle.load(handle)
        except (OSError, pickle.UnpicklingError, EOFError) as error:
            raise CorpusStoreError(
                f"cannot read block transactions {path}: {error}"
            ) from error

    def _block_arrays(self, index: int) -> Dict[str, object]:
        np = _load_numpy()
        block_dir = self._block_dir(index)
        loaded: Dict[str, object] = {}
        for name in BLOCK_ARRAY_NAMES:
            path = block_dir / f"{name}.npy"
            try:
                loaded[name] = np.load(path, mmap_mode="r")
            except (OSError, ValueError) as error:
                raise CorpusStoreError(
                    f"cannot attach block array {path}: {error}"
                ) from error
        return loaded

    def iter_transaction_blocks(self) -> Iterator[Tuple[int, List[Transaction]]]:
        """Yield ``(first_row, transactions)`` per block, one block at a time.

        The out-of-core iteration primitive: each block is unpickled when
        yielded and is free for collection once the consumer moves on --
        the handle never caches the concatenated corpus here.
        """
        row = 0
        for index, block in enumerate(self.blocks):
            transactions = self._load_block_transactions(index)
            yield row, transactions
            row += int(block["transactions"])

    def resolve_rows(self, rows: Sequence[int]) -> List[Transaction]:
        """Resolve global row ids to transactions, loading blocks at most once.

        Rows are grouped by owning block; only the touched blocks are
        unpickled (transiently -- nothing is cached on the handle), so the
        memory high-water mark is one block plus the result, not the
        corpus.
        """
        if self._transactions is not None:
            corpus = self._transactions
            return [corpus[row] for row in rows]
        starts: List[int] = []
        position = 0
        for block in self.blocks:
            starts.append(position)
            position += int(block["transactions"])
        if any(row < 0 or row >= position for row in rows):
            raise CorpusStoreError(
                f"row out of range for chain {self._directory} "
                f"({position} transactions)"
            )
        import bisect

        by_block: Dict[int, List[int]] = {}
        for order, row in enumerate(rows):
            index = bisect.bisect_right(starts, row) - 1
            by_block.setdefault(index, []).append(order)
        resolved: List[Optional[Transaction]] = [None] * len(rows)
        for index, orders in by_block.items():
            block = self._load_block_transactions(index)
            for order in orders:
                resolved[order] = block[rows[order] - starts[index]]
        return resolved

    # ------------------------------------------------------------------ #
    # CorpusStore-compatible full-corpus views
    # ------------------------------------------------------------------ #
    def arrays(self) -> Dict[str, object]:
        """Assemble the full-corpus arrays from the chain (cached).

        The structural matrix is rebuilt from the per-block row strips
        (pure copies of stored floats -- no ``cache.similarity`` calls, so
        earlier blocks are never recompiled); the per-item id arrays are
        concatenations of the per-block memmaps and the span table is the
        per-block tables shifted by their item offsets.  The result is
        keyed exactly like :meth:`CorpusStore.arrays`, which is what lets
        ``NumpyBackend.attach_store`` consume a chain unchanged.
        """
        if self._arrays is None:
            np = _load_numpy()
            blocks = self.blocks
            total_paths = (
                int(blocks[-1]["tag_paths_total"]) if blocks else 0
            )
            matrix = np.zeros((total_paths, total_paths), dtype=np.float64)
            item_arrays: Dict[str, List[object]] = {
                "item_tag_path_ids": [],
                "item_content_ids": [],
                "item_uids": [],
            }
            spans: List[object] = [np.zeros(1, dtype=np.int64)]
            item_offset = 0
            path_offset = 0
            for index in range(len(blocks)):
                arrays = self._block_arrays(index)
                strip = arrays["tp_rows"]
                new_paths, covered = strip.shape
                if new_paths:
                    matrix[path_offset : path_offset + new_paths, :covered] = strip
                    matrix[:covered, path_offset : path_offset + new_paths] = strip.T
                path_offset += new_paths
                for name in item_arrays:
                    item_arrays[name].append(arrays[name])
                spans.append(arrays["tx_spans"][1:] + item_offset)
                item_offset += int(blocks[index]["items"])
            assembled: Dict[str, object] = {"tp_matrix": matrix}
            for name, parts in item_arrays.items():
                assembled[name] = (
                    np.concatenate(parts)
                    if parts
                    else np.zeros(0, dtype=np.int64)
                )
            assembled["tx_spans"] = np.concatenate(spans)
            self._arrays = assembled
        return self._arrays

    def tag_paths(self) -> List[XMLPath]:
        """The cumulative tag-path registry, in global first-occurrence order."""
        self._ensure_registries()
        return list(self._tag_paths)

    def bind_transactions(self, transactions: Sequence[Transaction]) -> None:
        """Adopt the caller's live corpus list instead of unpickling blocks."""
        self._transactions = list(transactions)
        self._row_index = None

    def transactions(self) -> List[Transaction]:
        """The full chained corpus, concatenated from the blocks and cached.

        This materialises every block (refinement-shard workers need
        arbitrary row access); out-of-core callers should prefer
        :meth:`iter_transaction_blocks` / :meth:`resolve_rows`.
        """
        if self._transactions is None:
            corpus: List[Transaction] = []
            for index in range(len(self.blocks)):
                corpus.extend(self._load_block_transactions(index))
            self._transactions = corpus
        return self._transactions

    def row_index(self) -> Dict[Transaction, int]:
        """Mapping from chained transaction (by value) to its global row."""
        if self._row_index is None:
            self._row_index = {
                transaction: row
                for row, transaction in enumerate(self.transactions())
            }
        return self._row_index

    def attach(self, backend, transactions: Optional[Sequence[Transaction]] = None) -> bool:
        """Attach this chain to *backend* (``backend.attach_store``)."""
        attach = getattr(backend, "attach_store", None)
        if attach is None:
            return False
        return bool(attach(self, transactions))


def load_store(directory):
    """Load the store at *directory*, whichever layout it uses.

    A directory carrying a ``chain.json`` is opened as a
    :class:`BlockCorpusStore`; anything else goes through the monolithic
    :meth:`CorpusStore.load`.  Shard workers resolve ``store_dir``
    references through this, so refinement shards address block chains
    and monolithic stores interchangeably.
    """
    directory = Path(directory)
    if (directory / CHAIN_MANIFEST_NAME).exists():
        return BlockCorpusStore.open(directory)
    return CorpusStore.load(directory)


# --------------------------------------------------------------------------- #
# Process-wide store cache
# --------------------------------------------------------------------------- #
#: Stores attached by this process, keyed by directory.  Worker processes
#: resolve shard row ids through this cache, so the corpus is unpickled at
#: most once per process no matter how many shards and rounds reference it.
_STORE_CACHE: Dict[str, object] = {}


def cached_store(directory):
    """This process' shared handle for the store at *directory*.

    Chain-aware: resolves through :func:`load_store`, so shard workers
    addressing a block chain get a :class:`BlockCorpusStore` handle and
    monolithic directories keep returning :class:`CorpusStore`.
    """
    key = str(directory)
    store = _STORE_CACHE.get(key)
    if store is None:
        store = load_store(directory)
        _STORE_CACHE[key] = store
    else:
        # chain handles can go stale while a streaming writer appends;
        # refreshing here is what lets worker processes resolve rows of
        # blocks appended after their handle was first cached
        refresh = getattr(store, "refresh", None)
        if refresh is not None:
            refresh()
    return store


def clear_store_cache() -> None:
    """Drop every cached store handle (used by tests)."""
    _STORE_CACHE.clear()


# --------------------------------------------------------------------------- #
# Engine preparation (the single entry point runner / CLI / bench use)
# --------------------------------------------------------------------------- #
def _precompute_and_compile(engine, transactions: Sequence[Transaction]) -> int:
    """The historical warm-up: precompute the tag-path cache, compile."""
    engine.cache.precompute(
        {item.tag_path for transaction in transactions for item in transaction.items}
    )
    return engine.backend.compile_corpus(transactions)


def prepare_engine_corpus(
    engine,
    transactions: Sequence[Transaction],
    cache_dir=None,
    fingerprint: Optional[str] = None,
) -> Dict[str, object]:
    """Prepare *engine* for *transactions*, through the store when enabled.

    * ``cache_dir is None`` (the default-off configuration) or a backend
      without compiled corpora (the ``python`` reference): the historical
      precompute-and-compile path runs, status ``"off"`` /
      ``"unsupported"``.
    * Store **hit** (a valid directory whose fingerprint matches): the
      arrays are memmap-attached and *no* compile work happens -- the
      O(paths^2) cache precompute and the per-item compilation are both
      skipped, status ``"hit"`` with ``compiled == 0``.
    * Store **miss** (absent, stale-format, corrupted or crash-truncated
      directory): the corpus is compiled the historical way, exported with
      :meth:`CorpusStore.save` (best effort -- an unwritable cache
      directory degrades to status ``"error"`` without failing the run)
      and the fresh store is attached as the handle workers will share.

    Returns a status dictionary (``store``, ``compiled``, and on the store
    paths ``fingerprint`` / ``directory``).
    """
    transactions = list(transactions)
    backend = engine.backend
    if cache_dir is None:
        compiled = _precompute_and_compile(engine, transactions)
        return {"store": "off", "compiled": compiled}
    if getattr(backend, "attach_store", None) is None:
        compiled = _precompute_and_compile(engine, transactions)
        return {"store": "unsupported", "compiled": compiled}
    if fingerprint is None:
        fingerprint = corpus_fingerprint(transactions, engine.config)
    directory = store_directory(cache_dir, fingerprint)
    try:
        store = CorpusStore.load(directory)
    except CorpusStoreError:
        store = None
    if store is not None and store.fingerprint == fingerprint:
        store.bind_transactions(transactions)
        _STORE_CACHE[str(directory)] = store
        backend.attach_store(store, transactions)
        return {
            "store": "hit",
            "compiled": 0,
            "fingerprint": fingerprint,
            "directory": str(directory),
        }
    compiled = _precompute_and_compile(engine, transactions)
    try:
        store = CorpusStore.save(
            directory,
            transactions,
            engine.config,
            engine.cache,
            fingerprint=fingerprint,
        )
    except (OSError, pickle.PickleError, TypeError, ValueError) as error:
        # pickle/json encoding failures degrade exactly like an unwritable
        # directory: the run keeps its compiled in-memory engine; the
        # fingerprint and target directory make the failure debuggable
        # from the run record alone
        return {
            "store": "error",
            "compiled": compiled,
            "error": str(error),
            "fingerprint": fingerprint,
            "directory": str(directory),
        }
    backend.attach_store(store, transactions)
    return {
        "store": "miss",
        "compiled": compiled,
        "fingerprint": fingerprint,
        "directory": str(directory),
    }
