"""Persistent, mmap-backed compiled-corpus store.

Compiling a corpus into the :class:`~repro.similarity.backend.NumpyBackend`
feature blocks (tag-path matrix, per-item id arrays, content-class
registries) is the dominant fixed cost of every clustering run -- and
historically it was paid once *per process, per run*: each multiprocessing
worker rebuilt the compiled corpus from pickled ``Transaction`` lists.  The
store exports one compilation to a fingerprinted on-disk layout that any
number of later processes attach with ``np.load(mmap_mode="r")``, so N
processes share one set of page-cache pages instead of holding N private
compilations.

On-disk layout (one directory per fingerprint under the cache root)::

    <cache_dir>/<fingerprint[:16]>/
        manifest.json          # format version, fingerprint, counts (LAST)
        tp_matrix.npy          # (P, P) float64 structural-similarity matrix
        item_tag_path_ids.npy  # (I,) int64, corpus items in corpus order
        item_content_ids.npy   # (I,) int64, dense first-occurrence classes
        item_uids.npy          # (I,) int64, canonical item identifiers
        tx_spans.npy           # (T+1,) int64 item offsets per transaction
        tag_paths.json         # tag-path registry (list of step lists)
        transactions.pkl       # pickled corpus (worker-side attach only)

The manifest is written last, so a crash mid-save leaves a directory that
:meth:`CorpusStore.load` rejects (and the next run recompiles and
overwrites).  Staleness is handled entirely through the fingerprint: the
content hash covers the transactions (ids, paths, answers, terms, TCU
vectors), the similarity configuration and :data:`STORE_FORMAT_VERSION`,
so changed data, a changed ``(f, gamma)`` or a bumped store format each
land in a different directory and force a recompile.

The arrays reproduce a fresh :meth:`NumpyBackend.compile_corpus` of the
same corpus *exactly* (identifiers are assigned in the same
first-occurrence order, matrix entries come from the same pure
``TagPathSimilarityCache.similarity`` floats), which is what makes the
attach path bit-exact with the fresh-compile path.
"""

from __future__ import annotations

import hashlib
import json
import pickle
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.similarity.backend import NumpyBackend, _load_numpy
from repro.similarity.item import SimilarityConfig
from repro.transactions.transaction import Transaction
from repro.xmlmodel.paths import XMLPath

#: Version of the on-disk layout; part of the fingerprint *and* checked in
#: the manifest, so bumping it invalidates every existing store directory.
STORE_FORMAT_VERSION = 1

#: Name of the manifest file (written last for crash safety).
MANIFEST_NAME = "manifest.json"

#: The memmap-attached array blocks of a store directory.
ARRAY_NAMES = (
    "tp_matrix",
    "item_tag_path_ids",
    "item_content_ids",
    "item_uids",
    "tx_spans",
)


class CorpusStoreError(RuntimeError):
    """A store directory is absent, incomplete, corrupted or incompatible."""


def corpus_fingerprint(
    transactions: Sequence[Transaction], similarity: SimilarityConfig
) -> str:
    """Content hash of (corpus, similarity config, store format version).

    Hashes the *value* of every transaction -- ids, path steps, answers,
    terms and the ordered TCU term/weight pairs (exactly the information
    the compiled arrays are derived from) -- via ``repr``, which is purely
    value-based: floats render as their shortest round-trip form and tuples
    render element-wise, so two equal corpora hash identically regardless
    of object aliasing (unlike ``pickle``, whose memoisation encodes
    sharing structure and lazily cached fields).

    Integer *term identifiers* are the one per-process artifact in a
    transaction: the vocabulary assigns them in hash-randomised set order,
    so the same corpus carries a different (but bijective) term numbering
    in every process -- a numbering the compiled arrays never encode (item
    equality, content classes and cosine values are all invariant under
    it).  The fingerprint therefore relabels term ids by first occurrence
    in corpus order, which is process-independent because vector insertion
    order follows the generation text, not the id values.
    """
    digest = hashlib.sha256()
    digest.update(f"repro-corpus-store/{STORE_FORMAT_VERSION}".encode("utf-8"))
    digest.update(b"\x00")
    digest.update(repr((similarity.f, similarity.gamma)).encode("utf-8"))
    canonical_terms: Dict[int, int] = {}

    def canonical_vector(vector) -> tuple:
        pairs = []
        for term, weight in vector.items():
            canonical = canonical_terms.get(term)
            if canonical is None:
                canonical = len(canonical_terms)
                canonical_terms[term] = canonical
            pairs.append((canonical, weight))
        return tuple(pairs)

    for transaction in transactions:
        digest.update(b"\x00")
        digest.update(
            repr(
                (
                    transaction.transaction_id,
                    transaction.doc_id,
                    transaction.tuple_id,
                    [
                        (
                            item.item_id,
                            item.path.steps,
                            item.answer,
                            item.terms,
                            canonical_vector(item.vector),
                        )
                        for item in transaction.items
                    ],
                )
            ).encode("utf-8")
        )
    return digest.hexdigest()


def store_directory(cache_dir, fingerprint: str) -> Path:
    """The store directory for *fingerprint* under the cache root."""
    return Path(cache_dir) / fingerprint[:16]


class CorpusStore:
    """Handle to one fingerprinted store directory.

    Construct through :meth:`save` (export a freshly compiled corpus) or
    :meth:`load` (validate an existing directory); attach to a backend with
    :meth:`attach`.  Array blocks are loaded lazily with
    ``np.load(mmap_mode="r")`` and cached on the handle, so attaching costs
    page-table setup rather than a read of the data.
    """

    def __init__(self, directory: Path, manifest: Dict[str, object]) -> None:
        self._directory = Path(directory)
        self._manifest = manifest
        self._arrays: Optional[Dict[str, object]] = None
        self._tag_paths: Optional[List[XMLPath]] = None
        self._transactions: Optional[List[Transaction]] = None
        self._row_index: Optional[Dict[Transaction, int]] = None

    # ------------------------------------------------------------------ #
    @property
    def directory(self) -> Path:
        """The store directory this handle points at."""
        return self._directory

    @property
    def fingerprint(self) -> str:
        """The full corpus fingerprint recorded in the manifest."""
        return str(self._manifest["fingerprint"])

    @property
    def manifest(self) -> Dict[str, object]:
        """The parsed manifest (format version, fingerprint, counts)."""
        return self._manifest

    # ------------------------------------------------------------------ #
    # Save / load
    # ------------------------------------------------------------------ #
    @classmethod
    def save(
        cls,
        directory,
        transactions: Sequence[Transaction],
        similarity: SimilarityConfig,
        cache,
        fingerprint: Optional[str] = None,
    ) -> "CorpusStore":
        """Export a canonical compilation of *transactions* to *directory*.

        The registries are recomputed from scratch in corpus order -- the
        same first-occurrence insertion order a fresh backend compiling
        exactly this corpus would produce -- rather than copied from a live
        backend, whose registries may carry extra entries from
        representative compiles.  Matrix entries come from
        ``cache.similarity`` (the pure tag-path similarity the backends
        share), so the stored floats equal the fresh-compile floats bit for
        bit.  The manifest is written last; a crash mid-save therefore
        leaves a directory that :meth:`load` rejects.
        """
        np = _load_numpy()
        transactions = list(transactions)
        if fingerprint is None:
            fingerprint = corpus_fingerprint(transactions, similarity)
        tag_paths: List[XMLPath] = []
        tag_index: Dict[XMLPath, int] = {}
        content_index: Dict[tuple, int] = {}
        uid_index: Dict[object, int] = {}
        tp_ids: List[int] = []
        content_ids: List[int] = []
        uids: List[int] = []
        spans: List[int] = [0]
        content_key = NumpyBackend._content_key
        for transaction in transactions:
            for item in transaction.items:
                tag_path = item.tag_path
                tag_id = tag_index.get(tag_path)
                if tag_id is None:
                    tag_id = len(tag_paths)
                    tag_index[tag_path] = tag_id
                    tag_paths.append(tag_path)
                key = content_key(item)
                content_id = content_index.get(key)
                if content_id is None:
                    content_id = len(content_index)
                    content_index[key] = content_id
                uid = uid_index.get(item)
                if uid is None:
                    uid = len(uid_index)
                    uid_index[item] = uid
                tp_ids.append(tag_id)
                content_ids.append(content_id)
                uids.append(uid)
            spans.append(len(tp_ids))
        size = len(tag_paths)
        matrix = np.empty((size, size), dtype=np.float64)
        similarity_of = cache.similarity
        for i in range(size):
            path_i = tag_paths[i]
            for j in range(i, size):
                value = similarity_of(path_i, tag_paths[j])
                matrix[i, j] = value
                matrix[j, i] = value

        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        arrays = {
            "tp_matrix": matrix,
            "item_tag_path_ids": np.asarray(tp_ids, dtype=np.int64),
            "item_content_ids": np.asarray(content_ids, dtype=np.int64),
            "item_uids": np.asarray(uids, dtype=np.int64),
            "tx_spans": np.asarray(spans, dtype=np.int64),
        }
        for name, array in arrays.items():
            np.save(directory / f"{name}.npy", array)
        with open(directory / "tag_paths.json", "w", encoding="utf-8") as handle:
            json.dump([list(path.steps) for path in tag_paths], handle)
        with open(directory / "transactions.pkl", "wb") as handle:
            pickle.dump(transactions, handle, protocol=pickle.HIGHEST_PROTOCOL)
        manifest = {
            "format_version": STORE_FORMAT_VERSION,
            "fingerprint": fingerprint,
            "similarity": {"f": similarity.f, "gamma": similarity.gamma},
            "counts": {
                "transactions": len(transactions),
                "items": len(tp_ids),
                "tag_paths": size,
                "content_classes": len(content_index),
            },
            "arrays": [f"{name}.npy" for name in ARRAY_NAMES],
        }
        # last write: the manifest's presence marks the directory complete
        with open(directory / MANIFEST_NAME, "w", encoding="utf-8") as handle:
            json.dump(manifest, handle, indent=2, sort_keys=True)
            handle.write("\n")
        store = cls(directory, manifest)
        store._transactions = transactions
        _STORE_CACHE[str(directory)] = store
        return store

    @classmethod
    def load(cls, directory) -> "CorpusStore":
        """Validate *directory* and return a handle to it.

        Raises :class:`CorpusStoreError` when the manifest is absent or
        unreadable (including half-written crash leftovers), records a
        different :data:`STORE_FORMAT_VERSION`, or any array/registry file
        named by the layout is missing.
        """
        directory = Path(directory)
        manifest_path = directory / MANIFEST_NAME
        try:
            with open(manifest_path, "r", encoding="utf-8") as handle:
                manifest = json.load(handle)
        except (OSError, ValueError) as error:
            raise CorpusStoreError(
                f"cannot read corpus-store manifest {manifest_path}: {error}"
            ) from error
        if not isinstance(manifest, dict):
            raise CorpusStoreError(
                f"corpus-store manifest {manifest_path} is not an object"
            )
        version = manifest.get("format_version")
        if version != STORE_FORMAT_VERSION:
            raise CorpusStoreError(
                f"corpus store {directory} has format version {version!r}, "
                f"expected {STORE_FORMAT_VERSION}"
            )
        fingerprint = manifest.get("fingerprint")
        if not isinstance(fingerprint, str) or not fingerprint:
            raise CorpusStoreError(
                f"corpus store {directory} has no fingerprint"
            )
        missing = [
            name
            for name in [f"{name}.npy" for name in ARRAY_NAMES]
            + ["tag_paths.json", "transactions.pkl"]
            if not (directory / name).exists()
        ]
        if missing:
            raise CorpusStoreError(
                f"corpus store {directory} is missing {', '.join(missing)}"
            )
        return cls(directory, manifest)

    # ------------------------------------------------------------------ #
    # Lazy attached resources
    # ------------------------------------------------------------------ #
    def arrays(self) -> Dict[str, object]:
        """The array blocks, memmap-attached read-only and cached.

        ``np.load(mmap_mode="r")`` maps the ``.npy`` payloads copy-on-read:
        every process attaching the same store shares one set of page-cache
        pages, which is the whole point of the store.
        """
        if self._arrays is None:
            np = _load_numpy()
            loaded: Dict[str, object] = {}
            for name in ARRAY_NAMES:
                path = self._directory / f"{name}.npy"
                try:
                    loaded[name] = np.load(path, mmap_mode="r")
                except (OSError, ValueError) as error:
                    raise CorpusStoreError(
                        f"cannot attach corpus-store array {path}: {error}"
                    ) from error
            self._arrays = loaded
        return self._arrays

    def tag_paths(self) -> List[XMLPath]:
        """The tag-path registry, in stored (first-occurrence) order."""
        if self._tag_paths is None:
            path = self._directory / "tag_paths.json"
            try:
                with open(path, "r", encoding="utf-8") as handle:
                    steps_lists = json.load(handle)
            except (OSError, ValueError) as error:
                raise CorpusStoreError(
                    f"cannot read corpus-store tag paths {path}: {error}"
                ) from error
            self._tag_paths = [XMLPath(tuple(steps)) for steps in steps_lists]
        return self._tag_paths

    def bind_transactions(self, transactions: Sequence[Transaction]) -> None:
        """Adopt the caller's live corpus list instead of unpickling.

        Used on the attach path when the attaching process already holds
        the corpus (the usual case outside pool workers), so
        :meth:`transactions` / :meth:`row_index` never touch
        ``transactions.pkl`` there.
        """
        self._transactions = list(transactions)
        self._row_index = None

    def transactions(self) -> List[Transaction]:
        """The stored corpus, unpickled on first use (workers) and cached."""
        if self._transactions is None:
            path = self._directory / "transactions.pkl"
            try:
                with open(path, "rb") as handle:
                    self._transactions = pickle.load(handle)
            except (OSError, pickle.UnpicklingError, EOFError) as error:
                raise CorpusStoreError(
                    f"cannot read corpus-store transactions {path}: {error}"
                ) from error
        return self._transactions

    def row_index(self) -> Dict[Transaction, int]:
        """Mapping from corpus transaction (by value) to its row number."""
        if self._row_index is None:
            self._row_index = {
                transaction: row
                for row, transaction in enumerate(self.transactions())
            }
        return self._row_index

    def attach(self, backend, transactions: Optional[Sequence[Transaction]] = None) -> bool:
        """Attach this store to *backend* (``backend.attach_store``).

        Returns True when the backend zero-copy-attached the array blocks,
        False when it only kept the handle (already-compiled engines and
        backends without compiled corpora).
        """
        attach = getattr(backend, "attach_store", None)
        if attach is None:
            return False
        return bool(attach(self, transactions))


# --------------------------------------------------------------------------- #
# Process-wide store cache
# --------------------------------------------------------------------------- #
#: Stores attached by this process, keyed by directory.  Worker processes
#: resolve shard row ids through this cache, so the corpus is unpickled at
#: most once per process no matter how many shards and rounds reference it.
_STORE_CACHE: Dict[str, CorpusStore] = {}


def cached_store(directory) -> CorpusStore:
    """This process' shared handle for the store at *directory*."""
    key = str(directory)
    store = _STORE_CACHE.get(key)
    if store is None:
        store = CorpusStore.load(directory)
        _STORE_CACHE[key] = store
    return store


def clear_store_cache() -> None:
    """Drop every cached store handle (used by tests)."""
    _STORE_CACHE.clear()


# --------------------------------------------------------------------------- #
# Engine preparation (the single entry point runner / CLI / bench use)
# --------------------------------------------------------------------------- #
def _precompute_and_compile(engine, transactions: Sequence[Transaction]) -> int:
    """The historical warm-up: precompute the tag-path cache, compile."""
    engine.cache.precompute(
        {item.tag_path for transaction in transactions for item in transaction.items}
    )
    return engine.backend.compile_corpus(transactions)


def prepare_engine_corpus(
    engine,
    transactions: Sequence[Transaction],
    cache_dir=None,
    fingerprint: Optional[str] = None,
) -> Dict[str, object]:
    """Prepare *engine* for *transactions*, through the store when enabled.

    * ``cache_dir is None`` (the default-off configuration) or a backend
      without compiled corpora (the ``python`` reference): the historical
      precompute-and-compile path runs, status ``"off"`` /
      ``"unsupported"``.
    * Store **hit** (a valid directory whose fingerprint matches): the
      arrays are memmap-attached and *no* compile work happens -- the
      O(paths^2) cache precompute and the per-item compilation are both
      skipped, status ``"hit"`` with ``compiled == 0``.
    * Store **miss** (absent, stale-format, corrupted or crash-truncated
      directory): the corpus is compiled the historical way, exported with
      :meth:`CorpusStore.save` (best effort -- an unwritable cache
      directory degrades to status ``"error"`` without failing the run)
      and the fresh store is attached as the handle workers will share.

    Returns a status dictionary (``store``, ``compiled``, and on the store
    paths ``fingerprint`` / ``directory``).
    """
    transactions = list(transactions)
    backend = engine.backend
    if cache_dir is None:
        compiled = _precompute_and_compile(engine, transactions)
        return {"store": "off", "compiled": compiled}
    if getattr(backend, "attach_store", None) is None:
        compiled = _precompute_and_compile(engine, transactions)
        return {"store": "unsupported", "compiled": compiled}
    if fingerprint is None:
        fingerprint = corpus_fingerprint(transactions, engine.config)
    directory = store_directory(cache_dir, fingerprint)
    try:
        store = CorpusStore.load(directory)
    except CorpusStoreError:
        store = None
    if store is not None and store.fingerprint == fingerprint:
        store.bind_transactions(transactions)
        _STORE_CACHE[str(directory)] = store
        backend.attach_store(store, transactions)
        return {
            "store": "hit",
            "compiled": 0,
            "fingerprint": fingerprint,
            "directory": str(directory),
        }
    compiled = _precompute_and_compile(engine, transactions)
    try:
        store = CorpusStore.save(
            directory,
            transactions,
            engine.config,
            engine.cache,
            fingerprint=fingerprint,
        )
    except (OSError, pickle.PickleError, TypeError, ValueError) as error:
        # pickle/json encoding failures degrade exactly like an unwritable
        # directory: the run keeps its compiled in-memory engine; the
        # fingerprint and target directory make the failure debuggable
        # from the run record alone
        return {
            "store": "error",
            "compiled": compiled,
            "error": str(error),
            "fingerprint": fingerprint,
            "directory": str(directory),
        }
    backend.attach_store(store, transactions)
    return {
        "store": "miss",
        "compiled": compiled,
        "fingerprint": fingerprint,
        "directory": str(directory),
    }
