"""Transaction-level similarity: gamma-shared items and sim^gamma_J (Eq. 4).

Computing exact intersections between XML transactions is not effective
because items may share structure/content information without being
identical.  The paper therefore replaces set intersection with the set of
*gamma-shared items*::

    match_gamma(tr1, tr2) = match_gamma(tr1 -> tr2) ∪ match_gamma(tr2 -> tr1)

where ``match_gamma(tri -> trj)`` contains the items ``e`` of ``tri`` for
which there exists an item ``e_h`` of ``trj`` with ``sim(e, e_h) >= gamma``
and no other item of ``tri`` is more similar to that ``e_h``.  The XML
transaction similarity is then the Jaccard-style ratio::

    sim^gamma_J(tr1, tr2) = |match_gamma(tr1, tr2)| / |tr1 ∪ tr2|

The :class:`SimilarityEngine` bundles the configuration, the tag-path cache
and the item/transaction similarity functions; it is the single entry point
used by clustering and representative computation.  The scalar methods on
the engine *are* the reference ("python") implementation; batch entry
points (:meth:`SimilarityEngine.assign_all`,
:meth:`SimilarityEngine.pairwise_transaction_similarity`) are served by a
pluggable :class:`~repro.similarity.backend.SimilarityBackend`, selected by
name, so the clustering hot path can run on the vectorized numpy engine
while keeping this module as the executable specification.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.similarity.cache import TagPathSimilarityCache
from repro.similarity.content import content_similarity
from repro.similarity.item import SimilarityConfig, item_similarity
from repro.transactions.items import TreeTupleItem
from repro.transactions.transaction import Transaction, union_size


class SimilarityEngine:
    """Computes item and transaction similarities for a given configuration.

    Parameters
    ----------
    config:
        The :class:`SimilarityConfig` (blend factor ``f`` and threshold
        ``gamma``).
    cache:
        Optional shared :class:`TagPathSimilarityCache`; a private cache is
        created when omitted.
    backend:
        Name of the :class:`~repro.similarity.backend.SimilarityBackend`
        serving the batch entry points (``"python"`` by default;
        ``"numpy"`` selects the vectorized batch engine).  The backend is
        created lazily on first use.
    """

    def __init__(
        self,
        config: SimilarityConfig,
        cache: Optional[TagPathSimilarityCache] = None,
        backend: Optional[str] = None,
    ) -> None:
        self.config = config
        self.cache = cache if cache is not None else TagPathSimilarityCache()
        self.backend_name = backend or "python"
        self._backend = None

    @property
    def backend(self):
        """The lazily created similarity backend serving the batch API."""
        if self._backend is None:
            from repro.similarity.backend import create_backend

            self._backend = create_backend(self.backend_name, self)
        return self._backend

    # ------------------------------------------------------------------ #
    # Item level
    # ------------------------------------------------------------------ #
    def item_similarity(self, item_a: TreeTupleItem, item_b: TreeTupleItem) -> float:
        """Combined item similarity (Eq. 1) using the cached structural part."""
        structural = self.cache.item_similarity(item_a, item_b)
        return item_similarity(item_a, item_b, self.config, structural=structural)

    def gamma_matched(self, item_a: TreeTupleItem, item_b: TreeTupleItem) -> bool:
        """Return True when the two items are gamma-matched (Eq. 2)."""
        return self.item_similarity(item_a, item_b) >= self.config.gamma

    # ------------------------------------------------------------------ #
    # Transaction level
    # ------------------------------------------------------------------ #
    def directed_gamma_match(
        self, source: Transaction, target: Transaction
    ) -> Set[TreeTupleItem]:
        """Return ``match_gamma(source -> target)``.

        An item ``e`` of *source* is included when some item ``e_h`` of
        *target* is gamma-matched with it and no other item of *source* is
        strictly more similar to that ``e_h``.
        """
        if source.is_empty() or target.is_empty():
            return set()
        matched: Set[TreeTupleItem] = set()
        source_items = source.items
        for target_item in target.items:
            best_similarity = -1.0
            best_items: List[TreeTupleItem] = []
            for source_item in source_items:
                similarity = self.item_similarity(source_item, target_item)
                if similarity > best_similarity:
                    best_similarity = similarity
                    best_items = [source_item]
                elif similarity == best_similarity:
                    best_items.append(source_item)
            if best_similarity >= self.config.gamma:
                matched.update(best_items)
        return matched

    def gamma_shared_items(
        self, tr1: Transaction, tr2: Transaction
    ) -> Set[TreeTupleItem]:
        """Return the set of gamma-shared items ``match_gamma(tr1, tr2)``.

        Equivalent to the union of the two directed matches, but the pairwise
        item similarities are computed only once and reused for both
        directions (they are symmetric), which halves the dominant cost of
        the transaction similarity.
        """
        if tr1.is_empty() or tr2.is_empty():
            return set()
        items1 = tr1.items
        items2 = tr2.items
        gamma = self.config.gamma
        # similarity matrix computed once
        matrix = [
            [self.item_similarity(item_a, item_b) for item_b in items2]
            for item_a in items1
        ]
        matched: Set[TreeTupleItem] = set()
        # direction tr1 -> tr2: for each item of tr2, the best item(s) of tr1
        for column, _ in enumerate(items2):
            best = -1.0
            best_items: List[TreeTupleItem] = []
            for row, item_a in enumerate(items1):
                similarity = matrix[row][column]
                if similarity > best:
                    best = similarity
                    best_items = [item_a]
                elif similarity == best:
                    best_items.append(item_a)
            if best >= gamma:
                matched.update(best_items)
        # direction tr2 -> tr1: for each item of tr1, the best item(s) of tr2
        for row, _ in enumerate(items1):
            best = -1.0
            best_items = []
            for column, item_b in enumerate(items2):
                similarity = matrix[row][column]
                if similarity > best:
                    best = similarity
                    best_items = [item_b]
                elif similarity == best:
                    best_items.append(item_b)
            if best >= gamma:
                matched.update(best_items)
        return matched

    def _similarity_given_union(
        self, tr1: Transaction, tr2: Transaction, denominator: int
    ) -> float:
        """Eq. 4 with a precomputed ``|tr1 ∪ tr2|`` denominator.

        The single implementation of the similarity ratio, shared by
        :meth:`transaction_similarity` and :meth:`nearest_representative`
        so the two cannot drift apart.
        """
        if denominator == 0:
            return 0.0
        return len(self.gamma_shared_items(tr1, tr2)) / denominator

    def transaction_similarity(self, tr1: Transaction, tr2: Transaction) -> float:
        """XML transaction similarity ``sim^gamma_J`` (Eq. 4)."""
        return self._similarity_given_union(tr1, tr2, union_size(tr1, tr2))

    # ------------------------------------------------------------------ #
    # Bulk helpers used by clustering
    # ------------------------------------------------------------------ #
    def nearest_representative(
        self,
        transaction: Transaction,
        representatives: Sequence[Transaction],
        representative_item_sets: Optional[Sequence[Set[TreeTupleItem]]] = None,
    ) -> Tuple[int, float]:
        """Return (index, similarity) of the most similar representative.

        Ties are broken in favour of the **lowest index** (the loop only
        updates on strictly greater similarity), matching the deterministic
        relocation rule used in the reference algorithm; the rule is pinned
        by a dedicated unit test.  An empty representative list returns
        ``(-1, 0.0)``.

        The transaction-side set of the ``|tr1 ∪ tr2|`` denominator is
        built once and reused for every representative instead of being
        recomputed inside :func:`~repro.transactions.transaction.union_size`
        per pair; bulk callers looping over many transactions can hand in
        *representative_item_sets* (one ``item_set()`` per representative)
        to hoist the representative side out of their loop as well.
        """
        best_index = -1
        best_similarity = -1.0
        transaction_items = transaction.item_set()
        if representative_item_sets is None:
            representative_item_sets = [
                representative.item_set() for representative in representatives
            ]
        for index, (representative, representative_items) in enumerate(
            zip(representatives, representative_item_sets)
        ):
            similarity = self._similarity_given_union(
                transaction,
                representative,
                len(transaction_items | representative_items),
            )
            if similarity > best_similarity:
                best_similarity = similarity
                best_index = index
        if best_index < 0:
            return -1, 0.0
        return best_index, best_similarity

    def assign_all(
        self,
        transactions: Sequence[Transaction],
        representatives: Sequence[Transaction],
    ) -> List[Tuple[int, float]]:
        """Bulk assignment step: nearest representative for every transaction.

        Delegates to the configured backend, which may amortise compilation
        and vectorise the whole block of similarity evaluations; the result
        is one ``(index, similarity)`` pair per transaction with the same
        lowest-index tie-break as :meth:`nearest_representative`.
        """
        return self.backend.assign_all(transactions, representatives)

    def pairwise_transaction_similarity(
        self, rows: Sequence[Transaction], columns: Sequence[Transaction]
    ) -> List[List[float]]:
        """Batched ``sim^gamma_J`` block ``[rows x columns]`` via the backend."""
        return self.backend.pairwise_transaction_similarity(rows, columns)

    def score_candidates(
        self, cluster: Sequence[Transaction], candidates: Sequence[Transaction]
    ) -> List[float]:
        """Cohesion score (sum of member similarities) per candidate
        representative, evaluated as one batched block by the backend; the
        objective maximised by the GenerateTreeTuple refinement."""
        return self.backend.score_candidates(cluster, candidates)

    def rank_items_batch(self, items: Sequence["TreeTupleItem"]) -> List[float]:
        """Blended (pre-weight) structural/content ranks of an item pool
        (Fig. 6), one batched backend call instead of per-item loops."""
        return self.backend.rank_items_batch(items)

    def similarity_matrix(
        self, transactions: Sequence[Transaction]
    ) -> List[List[float]]:
        """Return the symmetric pairwise similarity matrix (used in tests and
        small-scale analyses; quadratic, so not for full corpora).

        The diagonal is set directly -- 1.0 for non-empty transactions, 0.0
        for empty ones -- instead of spending a full O(|tr|^2)
        ``transaction_similarity`` call per self-pair: every non-empty
        transaction gamma-matches itself item by item, so its
        self-similarity is 1 by construction (Eq. 4).  (Pathological corner:
        with ``gamma == 1.0`` and a TCU whose floating-point self-cosine
        rounds below 1, the full computation could report a diagonal below
        1; the closed form deliberately reports the mathematical value
        instead of that rounding artefact.)
        """
        n = len(transactions)
        matrix = [[0.0] * n for _ in range(n)]
        for i in range(n):
            matrix[i][i] = 0.0 if transactions[i].is_empty() else 1.0
            for j in range(i + 1, n):
                value = self.transaction_similarity(transactions[i], transactions[j])
                matrix[i][j] = value
                matrix[j][i] = value
        return matrix


def transaction_similarity(
    tr1: Transaction, tr2: Transaction, config: SimilarityConfig
) -> float:
    """Stateless convenience wrapper around :class:`SimilarityEngine`."""
    return SimilarityEngine(config).transaction_similarity(tr1, tr2)


def gamma_shared_items(
    tr1: Transaction, tr2: Transaction, config: SimilarityConfig
) -> Set[TreeTupleItem]:
    """Stateless convenience wrapper returning the gamma-shared item set."""
    return SimilarityEngine(config).gamma_shared_items(tr1, tr2)
