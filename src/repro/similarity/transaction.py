"""Transaction-level similarity: gamma-shared items and sim^gamma_J (Eq. 4).

Computing exact intersections between XML transactions is not effective
because items may share structure/content information without being
identical.  The paper therefore replaces set intersection with the set of
*gamma-shared items*::

    match_gamma(tr1, tr2) = match_gamma(tr1 -> tr2) ∪ match_gamma(tr2 -> tr1)

where ``match_gamma(tri -> trj)`` contains the items ``e`` of ``tri`` for
which there exists an item ``e_h`` of ``trj`` with ``sim(e, e_h) >= gamma``
and no other item of ``tri`` is more similar to that ``e_h``.  The XML
transaction similarity is then the Jaccard-style ratio::

    sim^gamma_J(tr1, tr2) = |match_gamma(tr1, tr2)| / |tr1 ∪ tr2|

The :class:`SimilarityEngine` bundles the configuration, the tag-path cache
and the item/transaction similarity functions; it is the single entry point
used by clustering and representative computation.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Sequence, Set, Tuple

from repro.similarity.cache import TagPathSimilarityCache
from repro.similarity.content import content_similarity
from repro.similarity.item import SimilarityConfig, item_similarity
from repro.transactions.items import TreeTupleItem
from repro.transactions.transaction import Transaction, union_size


class SimilarityEngine:
    """Computes item and transaction similarities for a given configuration.

    Parameters
    ----------
    config:
        The :class:`SimilarityConfig` (blend factor ``f`` and threshold
        ``gamma``).
    cache:
        Optional shared :class:`TagPathSimilarityCache`; a private cache is
        created when omitted.
    """

    def __init__(
        self,
        config: SimilarityConfig,
        cache: Optional[TagPathSimilarityCache] = None,
    ) -> None:
        self.config = config
        self.cache = cache if cache is not None else TagPathSimilarityCache()

    # ------------------------------------------------------------------ #
    # Item level
    # ------------------------------------------------------------------ #
    def item_similarity(self, item_a: TreeTupleItem, item_b: TreeTupleItem) -> float:
        """Combined item similarity (Eq. 1) using the cached structural part."""
        structural = self.cache.item_similarity(item_a, item_b)
        return item_similarity(item_a, item_b, self.config, structural=structural)

    def gamma_matched(self, item_a: TreeTupleItem, item_b: TreeTupleItem) -> bool:
        """Return True when the two items are gamma-matched (Eq. 2)."""
        return self.item_similarity(item_a, item_b) >= self.config.gamma

    # ------------------------------------------------------------------ #
    # Transaction level
    # ------------------------------------------------------------------ #
    def directed_gamma_match(
        self, source: Transaction, target: Transaction
    ) -> Set[TreeTupleItem]:
        """Return ``match_gamma(source -> target)``.

        An item ``e`` of *source* is included when some item ``e_h`` of
        *target* is gamma-matched with it and no other item of *source* is
        strictly more similar to that ``e_h``.
        """
        if source.is_empty() or target.is_empty():
            return set()
        matched: Set[TreeTupleItem] = set()
        source_items = source.items
        for target_item in target.items:
            best_similarity = -1.0
            best_items: List[TreeTupleItem] = []
            for source_item in source_items:
                similarity = self.item_similarity(source_item, target_item)
                if similarity > best_similarity:
                    best_similarity = similarity
                    best_items = [source_item]
                elif similarity == best_similarity:
                    best_items.append(source_item)
            if best_similarity >= self.config.gamma:
                matched.update(best_items)
        return matched

    def gamma_shared_items(
        self, tr1: Transaction, tr2: Transaction
    ) -> Set[TreeTupleItem]:
        """Return the set of gamma-shared items ``match_gamma(tr1, tr2)``.

        Equivalent to the union of the two directed matches, but the pairwise
        item similarities are computed only once and reused for both
        directions (they are symmetric), which halves the dominant cost of
        the transaction similarity.
        """
        if tr1.is_empty() or tr2.is_empty():
            return set()
        items1 = tr1.items
        items2 = tr2.items
        gamma = self.config.gamma
        # similarity matrix computed once
        matrix = [
            [self.item_similarity(item_a, item_b) for item_b in items2]
            for item_a in items1
        ]
        matched: Set[TreeTupleItem] = set()
        # direction tr1 -> tr2: for each item of tr2, the best item(s) of tr1
        for column, _ in enumerate(items2):
            best = -1.0
            best_items: List[TreeTupleItem] = []
            for row, item_a in enumerate(items1):
                similarity = matrix[row][column]
                if similarity > best:
                    best = similarity
                    best_items = [item_a]
                elif similarity == best:
                    best_items.append(item_a)
            if best >= gamma:
                matched.update(best_items)
        # direction tr2 -> tr1: for each item of tr1, the best item(s) of tr2
        for row, _ in enumerate(items1):
            best = -1.0
            best_items = []
            for column, item_b in enumerate(items2):
                similarity = matrix[row][column]
                if similarity > best:
                    best = similarity
                    best_items = [item_b]
                elif similarity == best:
                    best_items.append(item_b)
            if best >= gamma:
                matched.update(best_items)
        return matched

    def transaction_similarity(self, tr1: Transaction, tr2: Transaction) -> float:
        """XML transaction similarity ``sim^gamma_J`` (Eq. 4)."""
        denominator = union_size(tr1, tr2)
        if denominator == 0:
            return 0.0
        shared = self.gamma_shared_items(tr1, tr2)
        return len(shared) / denominator

    # ------------------------------------------------------------------ #
    # Bulk helpers used by clustering
    # ------------------------------------------------------------------ #
    def nearest_representative(
        self, transaction: Transaction, representatives: Sequence[Transaction]
    ) -> Tuple[int, float]:
        """Return (index, similarity) of the most similar representative.

        Ties are broken in favour of the lowest index, matching the
        deterministic relocation rule used in the reference algorithm.  An
        empty representative list returns ``(-1, 0.0)``.
        """
        best_index = -1
        best_similarity = -1.0
        for index, representative in enumerate(representatives):
            similarity = self.transaction_similarity(transaction, representative)
            if similarity > best_similarity:
                best_similarity = similarity
                best_index = index
        if best_index < 0:
            return -1, 0.0
        return best_index, best_similarity

    def similarity_matrix(
        self, transactions: Sequence[Transaction]
    ) -> List[List[float]]:
        """Return the symmetric pairwise similarity matrix (used in tests and
        small-scale analyses; quadratic, so not for full corpora)."""
        n = len(transactions)
        matrix = [[0.0] * n for _ in range(n)]
        for i in range(n):
            matrix[i][i] = self.transaction_similarity(transactions[i], transactions[i])
            for j in range(i + 1, n):
                value = self.transaction_similarity(transactions[i], transactions[j])
                matrix[i][j] = value
                matrix[j][i] = value
        return matrix


def transaction_similarity(
    tr1: Transaction, tr2: Transaction, config: SimilarityConfig
) -> float:
    """Stateless convenience wrapper around :class:`SimilarityEngine`."""
    return SimilarityEngine(config).transaction_similarity(tr1, tr2)


def gamma_shared_items(
    tr1: Transaction, tr2: Transaction, config: SimilarityConfig
) -> Set[TreeTupleItem]:
    """Stateless convenience wrapper returning the gamma-shared item set."""
    return SimilarityEngine(config).gamma_shared_items(tr1, tr2)
