"""Content similarity between tree tuple items (paper Sec. 4.1.2).

Content similarity is the cosine similarity between the ttf.itf-weighted TCU
vectors of the two items.  Empty TCUs (items whose answer produced no index
terms, e.g. purely numeric attribute values) have similarity 0 against
everything, including themselves; this convention keeps the combined
similarity well defined for structure-only items.
"""

from __future__ import annotations

from repro.text.vector import SparseVector


def cosine_similarity(u: SparseVector, v: SparseVector) -> float:
    """Cosine similarity between two sparse TCU vectors (0 when either empty)."""
    return u.cosine(v)


def content_similarity(item_i, item_j) -> float:
    """Content similarity between two tree tuple items.

    Equals the cosine similarity of their TCU vectors.  When *both* TCUs are
    empty -- typical for numeric fields such as years, page ranges or
    identifiers whose tokens are dropped by preprocessing -- the comparison
    falls back to exact matching of the raw answers, so two identical items
    always have content similarity 1 and two different numeric values have 0.
    A mixed comparison (one empty, one non-empty TCU) scores 0.
    """
    if not item_i.vector and not item_j.vector:
        return 1.0 if item_i.answer == item_j.answer else 0.0
    return cosine_similarity(item_i.vector, item_j.vector)
