"""Similarity measures for XML tree tuple items and transactions (Sec. 4.1)."""

from repro.similarity.backend import (
    DEFAULT_BACKEND,
    BackendUnavailableError,
    NumpyBackend,
    PythonBackend,
    ShardedBackend,
    SimilarityBackend,
    available_backends,
    create_backend,
    register_backend,
    registered_backends,
)
from repro.similarity.cache import TagPathSimilarityCache
from repro.similarity.content import content_similarity, cosine_similarity
from repro.similarity.item import SimilarityConfig, gamma_matched, item_similarity
from repro.similarity.structural import (
    dirichlet,
    path_similarity,
    positional_tag_score,
    structural_similarity,
    tag_path_similarity,
)
from repro.similarity.transaction import (
    SimilarityEngine,
    gamma_shared_items,
    transaction_similarity,
)

__all__ = [
    "DEFAULT_BACKEND",
    "BackendUnavailableError",
    "SimilarityBackend",
    "PythonBackend",
    "NumpyBackend",
    "ShardedBackend",
    "available_backends",
    "create_backend",
    "register_backend",
    "registered_backends",
    "dirichlet",
    "positional_tag_score",
    "tag_path_similarity",
    "structural_similarity",
    "path_similarity",
    "cosine_similarity",
    "content_similarity",
    "SimilarityConfig",
    "item_similarity",
    "gamma_matched",
    "TagPathSimilarityCache",
    "SimilarityEngine",
    "transaction_similarity",
    "gamma_shared_items",
]
