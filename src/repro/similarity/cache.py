"""Caching of pairwise tag-path structural similarities.

The complexity analysis of the paper (Sec. 4.3.2) observes that, since the
input XML schema is fixed, the structural similarity between every pair of
maximal tag paths can be computed once and reused; this reduces the cost of
item ranking from quadratic in the number of items to quadratic in the (much
smaller) number of distinct tag paths.  :class:`TagPathSimilarityCache`
implements exactly that memoisation and is shared by the similarity engine,
the representative computation and the clustering algorithms.
"""

from __future__ import annotations

from typing import Dict, Iterable, Optional, Tuple

from repro.similarity.structural import tag_path_similarity
from repro.xmlmodel.paths import XMLPath


class TagPathSimilarityCache:
    """Memoises structural similarities between maximal tag paths.

    The cache is symmetric: ``(p, q)`` and ``(q, p)`` share one entry.  It can
    be pre-populated with :meth:`precompute` (the strategy suggested by the
    complexity analysis) or filled lazily on first use.

    Entries are always *computed* in canonical key order, not in the
    caller's argument order: :func:`tag_path_similarity` sums the two
    directed matching passes in argument order, so swapping its operands can
    change the result by one ULP, and a cache filled in query order would
    return history-dependent floats for mathematically identical pairs --
    enough to flip exact argmax ties in the gamma matching.  Canonical-order
    evaluation makes every similarity a pure function of the two paths,
    which the backend parity harness relies on.
    """

    def __init__(self) -> None:
        self._cache: Dict[Tuple[XMLPath, XMLPath], float] = {}
        self.hits = 0
        self.misses = 0
        self.precomputed = 0

    # ------------------------------------------------------------------ #
    @staticmethod
    def _key(path_a: XMLPath, path_b: XMLPath) -> Tuple[XMLPath, XMLPath]:
        return (path_a, path_b) if path_a <= path_b else (path_b, path_a)

    def similarity(self, path_a: XMLPath, path_b: XMLPath) -> float:
        """Return the structural similarity of two *tag* paths (cached)."""
        key = self._key(path_a, path_b)
        value = self._cache.get(key)
        if value is None:
            self.misses += 1
            value = tag_path_similarity(key[0].steps, key[1].steps)
            self._cache[key] = value
        else:
            self.hits += 1
        return value

    def item_similarity(self, item_a, item_b) -> float:
        """Return the cached structural similarity of two items' tag paths."""
        return self.similarity(item_a.tag_path, item_b.tag_path)

    def precompute(self, tag_paths: Iterable[XMLPath]) -> int:
        """Precompute all pairwise similarities over *tag_paths*.

        Every newly inserted entry is counted in :attr:`precomputed`
        (reported by :meth:`stats`) rather than as a miss: precomputed
        entries are the up-front work Sec. 4.3.2 prescribes, so lookups
        that land on them are genuine hits -- but without this separate
        counter a precomputed run would report ``misses=0`` and a
        meaningless 100% hit rate, hiding how much of the cache was built
        eagerly versus on demand.

        Returns the number of cache entries after precomputation.
        """
        paths = list(dict.fromkeys(tag_paths))
        for i, path_a in enumerate(paths):
            for path_b in paths[i:]:
                key = self._key(path_a, path_b)
                if key not in self._cache:
                    self._cache[key] = tag_path_similarity(key[0].steps, key[1].steps)
                    self.precomputed += 1
        return len(self._cache)

    def __len__(self) -> int:
        return len(self._cache)

    def clear(self) -> None:
        self._cache.clear()
        self.hits = 0
        self.misses = 0
        self.precomputed = 0

    def stats(self) -> Dict[str, int]:
        """Return cache statistics (useful in efficiency experiments).

        ``entries`` is the current cache size, ``hits``/``misses`` count
        lookups served from / computed into the cache, and ``precomputed``
        counts the entries inserted eagerly by :meth:`precompute` (they
        are neither hits nor misses; see :meth:`precompute`).
        """
        return {
            "entries": len(self._cache),
            "hits": self.hits,
            "misses": self.misses,
            "precomputed": self.precomputed,
        }
