"""Structural similarity between tree tuple items (paper Eq. 3).

Structural similarity compares the *tag paths* of two items.  Each tag of one
path is matched against the other path with the Dirichlet (Kronecker delta)
function, corrected by a factor inversely proportional to the absolute
difference of the tag positions; matches of tags that sit at very different
depths therefore contribute less.  The final value averages the directed
matchings in both directions:

.. math::

    sim_S(e_i, e_j) = \\frac{1}{n+m}
        \\left( \\sum_{h=1}^{n} s(t_{i_h}, p_j, h)
              + \\sum_{k=1}^{m} s(t_{j_k}, p_i, k) \\right)

with ``s(t, p, a) = max_{l=1..L} (1 + |a - l|)^{-1} * delta(t, t_l)``.
"""

from __future__ import annotations

from typing import Sequence

from repro.xmlmodel.paths import XMLPath


def dirichlet(tag_a: str, tag_b: str) -> float:
    """The Dirichlet (exact-match) tag comparison function.

    Returns 1.0 when the two tag names coincide and 0.0 otherwise.  The paper
    deliberately restricts itself to syntactic matching (Sec. 4.1.1); a
    knowledge-base-backed semantic comparison is future work.
    """
    return 1.0 if tag_a == tag_b else 0.0


def positional_tag_score(tag: str, path: Sequence[str], position: int) -> float:
    """``s(t, p, a)``: best positionally-discounted match of *tag* in *path*.

    Parameters
    ----------
    tag:
        The tag name being matched.
    path:
        The sequence of tag names of the other path.
    position:
        1-based position of *tag* inside its own path.
    """
    best = 0.0
    for index, other in enumerate(path, start=1):
        if dirichlet(tag, other) == 0.0:
            continue
        score = 1.0 / (1.0 + abs(position - index))
        if score > best:
            best = score
            if best == 1.0:
                break
    return best


def tag_path_similarity(path_i: Sequence[str], path_j: Sequence[str]) -> float:
    """Structural similarity of two tag paths (sequences of tag names).

    The result lies in ``[0, 1]``: identical paths score 1.0, paths with no
    common tag score 0.0.
    """
    steps_i = list(path_i)
    steps_j = list(path_j)
    n = len(steps_i)
    m = len(steps_j)
    if n == 0 or m == 0:
        return 0.0
    total = 0.0
    for h, tag in enumerate(steps_i, start=1):
        total += positional_tag_score(tag, steps_j, h)
    for k, tag in enumerate(steps_j, start=1):
        total += positional_tag_score(tag, steps_i, k)
    return total / (n + m)


def structural_similarity(item_i, item_j) -> float:
    """Structural similarity between two tree tuple items (Eq. 3).

    The items' *maximal tag paths* (complete path minus the trailing
    attribute / ``S`` step) are compared with :func:`tag_path_similarity`.
    """
    return tag_path_similarity(item_i.tag_path.steps, item_j.tag_path.steps)


def path_similarity(path_i: XMLPath, path_j: XMLPath) -> float:
    """Structural similarity between two paths given as :class:`XMLPath`.

    Complete paths are first reduced to their maximal tag paths so attribute
    names and the ``S`` sentinel never take part in tag matching.
    """
    return tag_path_similarity(path_i.tag_path().steps, path_j.tag_path().steps)
