"""Optional torch tensor backend for the similarity hot paths.

:class:`TorchBackend` is the accelerator-class backend behind the same
registry as the ``python`` / ``numpy`` / ``sharded`` backends (see
``docs/ARCHITECTURE.md``, "How to add a backend").  It mirrors
:class:`~repro.similarity.backend.NumpyBackend`'s compiled-corpus layout --
the same per-transaction tag-path / content-class / uid id arrays, the same
shared tag-path matrix and memoised per-content-class blocks -- but
evaluates the batched gamma-match kernels as padded tensor reductions on a
configurable torch device.

Device selection and dtype policy
---------------------------------
The backend spec is ``"torch[:device]"``:

* ``"torch"`` -- CPU, float64: **bit-exact** with the scalar reference.
  Every item similarity is gathered from the same scalar-function caches as
  the numpy engine and blended with the same elementwise IEEE-754
  operations in float64; the gamma-match reductions are max/any reductions
  (order-independent, hence exact), and every accumulation that feeds a
  comparison replays the reference left-to-right order.  The parity suite
  (``tests/test_torch_backend.py``) asserts ``==`` on floats, assignments
  and whole clusterings.
* ``"torch:cuda"`` -- CUDA, float64: the same kernels on the GPU.
  Elementwise float64 arithmetic is IEEE-754 on CUDA too, so CPU/CUDA
  results agree in practice, but cross-device bit-exactness is *documented
  as a tolerance* rather than asserted: library versions may fuse
  operations differently.  The lowest-index tie-break is preserved exactly
  on every device (the final argmax runs on the host over the downloaded
  similarity matrix).
* ``"torch:mps"`` -- Apple MPS, float32 (MPS has no float64): results carry
  float32 rounding and are compared with an explicit tolerance; threshold
  decisions for similarities within ~1e-6 of ``gamma`` may differ from the
  float64 backends.  Tie-breaks remain lowest-index.

Unavailable dependencies raise
:class:`~repro.similarity.backend.BackendUnavailableError` with an
actionable message at *config-resolution time* (``ClusteringConfig`` /
CLI ``--backend torch``), never deep inside a fit; the core install stays
numpy-only.

Sharding policy
---------------
Torch runtimes must not be re-initialised inside multiprocessing pool
workers (CUDA contexts cannot survive ``fork`` and every spawned worker
would pay a fresh runtime/device initialisation).  The backend therefore
refuses nested process sharding cleanly: ``"sharded:N:torch"`` is rejected
at option-parsing time, and cluster-sharded refinement with a torch engine
degrades to the warm in-process serial path
(:func:`~repro.network.mpengine.refine_clusters`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence

from repro.similarity.backend import BackendUnavailableError, NumpyBackend
from repro.transactions.items import TreeTupleItem
from repro.transactions.transaction import Transaction

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.similarity.transaction import SimilarityEngine

#: Devices the backend knows how to validate up front.  Anything else is
#: handed to ``torch.device`` and rejected with the parse error it raises.
KNOWN_DEVICE_TYPES = ("cpu", "cuda", "mps")


def _load_torch():
    """Import torch, raising :class:`BackendUnavailableError` if absent."""
    try:
        import torch
    except ImportError as error:
        raise BackendUnavailableError(
            "the 'torch' similarity backend requires PyTorch, which is not "
            "installed; install the CPU wheel with 'pip install torch "
            "--index-url https://download.pytorch.org/whl/cpu' (or select "
            "--backend numpy / python, which need no optional dependencies)"
        ) from error
    return torch


def torch_importable() -> bool:
    """Return True when PyTorch can be imported in this environment."""
    try:
        _load_torch()
    except BackendUnavailableError:
        return False
    return True


def _resolve_device(torch, spec: Optional[str]):
    """Resolve a device spec (``None``/``"cuda"``/``"cuda:1"``/...).

    Raises ``ValueError`` for specs torch cannot parse and
    :class:`BackendUnavailableError` for well-formed devices that are not
    usable in this environment (e.g. ``cuda`` on a CPU-only wheel), so the
    failure surfaces at config-resolution time with an actionable message.
    """
    name = spec or "cpu"
    try:
        device = torch.device(name)
    except (RuntimeError, ValueError, TypeError) as error:
        raise ValueError(
            f"invalid torch device {name!r} for the torch backend "
            f"(expected 'torch[:device]' with a device such as "
            f"{', '.join(KNOWN_DEVICE_TYPES)})"
        ) from error
    if device.type == "cuda" and not torch.cuda.is_available():
        raise BackendUnavailableError(
            "the 'torch:cuda' backend requires a CUDA-enabled PyTorch build "
            "and a visible GPU (torch.cuda.is_available() is false); select "
            "'torch' for the CPU tensor engine instead"
        )
    if device.type == "mps":
        mps = getattr(getattr(torch, "backends", None), "mps", None)
        if mps is None or not mps.is_available():
            raise BackendUnavailableError(
                "the 'torch:mps' backend requires an Apple-silicon PyTorch "
                "build with MPS support (torch.backends.mps.is_available() "
                "is false); select 'torch' for the CPU tensor engine instead"
            )
    return device


def validate_torch_spec(options: Optional[str] = None) -> None:
    """Validate a ``torch[:device]`` spec without building a backend.

    Called by :func:`repro.similarity.backend.validate_backend_spec` (and
    through it by ``ClusteringConfig`` and the CLI) so an uninstalled torch
    or an unusable device fails at config-resolution time.
    """
    torch = _load_torch()
    _resolve_device(torch, options)


class TorchBackend(NumpyBackend):
    """Tensor backend: the numpy compiled layout evaluated by torch kernels.

    Shares the whole compilation pipeline with
    :class:`~repro.similarity.backend.NumpyBackend` -- the tag-path /
    content-class / uid registries, the pinned and transient compile
    caches, the scalar-function memo blocks -- and overrides the two batch
    kernels (:meth:`_pair_similarities`, :meth:`rank_items_batch`) with
    padded tensor reductions on the configured device.  Every derived entry
    point (``assign_all``, ``score_candidates``, ``nearest_representative``,
    ``transaction_similarity``, ``pairwise_transaction_similarity``)
    inherits the numpy backend's reference-order accumulation and
    lowest-index argmax, so the parity properties documented there carry
    over unchanged on CPU float64.
    """

    name = "torch"

    def __init__(self, engine: "SimilarityEngine", options: Optional[str] = None) -> None:
        torch = _load_torch()
        super().__init__(engine)
        self._torch = torch
        self.device_spec = options or "cpu"
        self.device = _resolve_device(torch, options)
        # MPS has no float64; everywhere else the kernels run in float64 so
        # CPU results are bit-exact with the scalar reference.
        self.dtype = torch.float32 if self.device.type == "mps" else torch.float64
        self._tp_tensor_cache = None

    # ------------------------------------------------------------------ #
    # Tensor views of the shared compiled state
    # ------------------------------------------------------------------ #
    def _tp_tensor(self):
        """Device tensor view of the dense tag-path similarity matrix.

        Rebuilt (and re-uploaded) only when the shared numpy matrix grew to
        cover new tag paths; the matrix object itself is never mutated in
        place, so a same-size cache is always current.
        """
        matrix = self._ensure_tp_matrix()
        cached = self._tp_tensor_cache
        if cached is None or cached.shape[0] != matrix.shape[0]:
            cached = self._torch.as_tensor(
                matrix, dtype=self.dtype, device=self.device
            )
            self._tp_tensor_cache = cached
        return cached

    def _index_tensor(self, values):
        """Device ``long`` tensor for an id array (advanced indexing)."""
        return self._torch.as_tensor(
            self._np.ascontiguousarray(values), dtype=self._torch.long
        ).to(self.device)

    # ------------------------------------------------------------------ #
    # Batch kernel
    # ------------------------------------------------------------------ #
    def _pair_similarities(self, rows: Sequence[Transaction], columns: Sequence[Transaction]):
        """The (rows x columns) ``sim^gamma_J`` block via padded tensors.

        The row transactions are padded into ``(rows, max_items)`` id
        tensors with a validity mask; per representative column the item
        block becomes one ``(rows, max_items, column_items)`` gather +
        blend, and the two directed gamma-match passes of Eq. 2 are masked
        ``amax``/``any`` reductions.  Matched-item and union counts reuse
        the numpy backend's exact integer set arithmetic on the host, so
        the returned float64 numpy matrix feeds the inherited entry points
        unchanged.
        """
        np = self._np
        torch = self._torch
        f = self.config.f
        gamma = self.config.gamma
        sims = np.zeros((len(rows), len(columns)), dtype=np.float64)

        compiled_rows = [self._compile(row) for row in rows]
        compiled_columns = [self._compile(column) for column in columns]
        row_positions = [i for i, c in enumerate(compiled_rows) if c.length]
        column_positions = [j for j, c in enumerate(compiled_columns) if c.length]
        if not row_positions or not column_positions:
            return sims

        active = [compiled_rows[i] for i in row_positions]
        count = len(active)
        width = max(c.length for c in active)

        # --- padded row tensors (ids + validity mask) ---------------------- #
        row_mask_np = np.zeros((count, width), dtype=bool)
        for position, compiled in enumerate(active):
            row_mask_np[position, : compiled.length] = True
        row_mask = torch.as_tensor(row_mask_np).to(self.device)

        if f != 0.0:
            tp = self._tp_tensor()
            row_tp_np = np.zeros((count, width), dtype=np.intp)
            for position, compiled in enumerate(active):
                row_tp_np[position, : compiled.length] = compiled.tag_path_ids
            row_tp = self._index_tensor(row_tp_np)

        # --- content lookup block (skipped entirely when f == 1) ----------- #
        if f != 1.0:
            row_classes = np.unique(
                np.concatenate([c.content_ids for c in active])
            )
            column_classes = np.unique(
                np.concatenate(
                    [compiled_columns[j].content_ids for j in column_positions]
                )
            )
            content, row_remap, column_remap = self._content_maps(
                row_classes, column_classes
            )
            content_t = torch.as_tensor(
                content, dtype=self.dtype, device=self.device
            )
            row_ck_np = np.zeros((count, width), dtype=np.intp)
            for position, compiled in enumerate(active):
                row_ck_np[position, : compiled.length] = row_remap[
                    compiled.content_ids
                ]
            row_ck = self._index_tensor(row_ck_np)

        pad_mask = ~row_mask.unsqueeze(-1)
        for j in column_positions:
            column = compiled_columns[j]
            # item-similarity block: same arithmetic as the scalar Eq. 1,
            # including the f == 0 / f == 1 short-circuits.
            if f != 0.0:
                column_tp = self._index_tensor(column.tag_path_ids)
                structural = tp[row_tp.unsqueeze(-1), column_tp]
            if f == 1.0:
                block = structural
            else:
                column_ck = self._index_tensor(column_remap[column.content_ids])
                contentpart = content_t[row_ck.unsqueeze(-1), column_ck]
                if f == 0.0:
                    block = contentpart
                else:
                    block = f * structural + (1.0 - f) * contentpart

            masked = block.masked_fill(pad_mask, float("-inf"))
            # direction tr -> rep: per representative item, the best row
            # item(s) of each padded transaction row.
            column_max = masked.amax(dim=1)
            qualifying = column_max >= gamma
            matched_rows = (
                (block == column_max.unsqueeze(1))
                & qualifying.unsqueeze(1)
                & row_mask.unsqueeze(-1)
            ).any(dim=2)
            # direction rep -> tr: per row item, its best representative
            # item(s); padded slots carry -inf maxima and never qualify.
            row_max = masked.amax(dim=2)
            row_qualifies = row_max >= gamma
            matched_columns = (
                (block == row_max.unsqueeze(-1)) & row_qualifies.unsqueeze(-1)
            ).any(dim=1)

            matched_rows_np = matched_rows.cpu().numpy()
            matched_columns_np = matched_columns.cpu().numpy()
            column_uids = column.uids
            column_uid_set = column.uid_set
            for position in range(count):
                compiled = active[position]
                matched = set(
                    compiled.uids[
                        matched_rows_np[position, : compiled.length]
                    ].tolist()
                )
                matched.update(column_uids[matched_columns_np[position]].tolist())
                union = len(compiled.uid_set | column_uid_set)
                if union:
                    sims[row_positions[position], j] = len(matched) / union
        return sims

    # ------------------------------------------------------------------ #
    # Representative refinement (batch ranking)
    # ------------------------------------------------------------------ #
    def rank_items_batch(self, items: Sequence[TreeTupleItem]) -> List[float]:
        """Blended structural/content ranks via device tensor reductions.

        The structural sums are integer-valued (path multiplicities), hence
        exact in any reduction order; the content ranks replay the
        reference left-to-right accumulation column by column, so on CPU
        float64 every rank is bit-identical to the scalar loop (same
        guarantee as the numpy backend, same memoised cosine block).
        """
        items = list(items)
        n = len(items)
        if not n:
            return []
        np = self._np
        torch = self._torch
        f = self.config.f
        gamma = self.config.gamma

        # --- structural ranking (per distinct complete path) --------------- #
        if f != 0.0:
            path_counts = {}
            for entry in items:
                path_counts[entry.path] = path_counts.get(entry.path, 0) + 1
            distinct_paths = list(path_counts)
            item_tp = self._index_tensor(
                np.array(
                    [self._tag_path_id(entry.tag_path) for entry in items],
                    dtype=np.intp,
                )
            )
            pool_tp = self._index_tensor(
                np.array(
                    [self._tag_path_id(path.tag_path()) for path in distinct_paths],
                    dtype=np.intp,
                )
            )
            structural = self._tp_tensor()[item_tp.unsqueeze(-1), pool_tp]
            counts = torch.as_tensor(
                np.array(
                    [path_counts[path] for path in distinct_paths],
                    dtype=np.float64,
                ),
                dtype=self.dtype,
                device=self.device,
            )
            zero = torch.zeros((), dtype=self.dtype, device=self.device)
            rank_s = torch.where(
                structural >= gamma, counts.unsqueeze(0), zero
            ).sum(dim=1) / len(distinct_paths)
        else:
            rank_s = torch.zeros(n, dtype=self.dtype, device=self.device)

        # --- content ranking (memoised per-class cosine block) ------------- #
        if f != 1.0:
            class_ids = np.array(
                [self._content_id(entry) for entry in items], dtype=np.intp
            )
            present = np.unique(class_ids)
            block = self._cosine_block(present.tolist())
            remap = np.zeros(len(self._content_exemplars), dtype=np.intp)
            remap[present] = np.arange(len(present), dtype=np.intp)
            local = self._index_tensor(remap[class_ids])
            cosines = torch.as_tensor(block, dtype=self.dtype, device=self.device)[
                local.unsqueeze(-1), local
            ]
            # accumulate column by column so every rank is the same
            # sequential left-to-right sum as the reference loop
            rank_c = torch.zeros(n, dtype=self.dtype, device=self.device)
            for j in range(n):
                rank_c = rank_c + cosines[:, j]
            empty = torch.as_tensor(
                np.array([not entry.vector for entry in items], dtype=bool)
            ).to(self.device)
            rank_c = rank_c.masked_fill(empty, 0.0)
        else:
            # the reference blend multiplies rank_C by (1 - f) == 0.0, so any
            # finite value yields the same float; skip the cosine work
            rank_c = torch.zeros(n, dtype=self.dtype, device=self.device)

        ranks = f * rank_s + (1.0 - f) * rank_c
        return [float(rank) for rank in ranks.cpu().tolist()]
