"""Optional torch tensor backend for the similarity hot paths.

:class:`TorchBackend` is the accelerator-class backend behind the same
registry as the ``python`` / ``numpy`` / ``sharded`` backends (see
``docs/ARCHITECTURE.md``, "How to add a backend").  It mirrors
:class:`~repro.similarity.backend.NumpyBackend`'s compiled-corpus layout --
the same per-transaction tag-path / content-class / uid id arrays, the same
shared tag-path matrix and memoised per-content-class blocks -- but
evaluates the batched gamma-match kernels as padded tensor reductions on a
configurable torch device.

Device selection and dtype policy
---------------------------------
The backend spec is ``"torch[:device][:block=N]"`` (the ``block=`` part
configures the tile budget of the batched kernels, see *Tiling* below):

* ``"torch"`` -- CPU, float64: **bit-exact** with the scalar reference.
  Every item similarity is gathered from the same scalar-function caches as
  the numpy engine and blended with the same elementwise IEEE-754
  operations in float64; the gamma-match reductions are max/any reductions
  (order-independent, hence exact), and every accumulation that feeds a
  comparison replays the reference left-to-right order.  The parity suite
  (``tests/test_torch_backend.py``) asserts ``==`` on floats, assignments
  and whole clusterings.
* ``"torch:cuda"`` -- CUDA, float64: the same kernels on the GPU.
  Elementwise float64 arithmetic is IEEE-754 on CUDA too, so CPU/CUDA
  results agree in practice, but cross-device bit-exactness is *documented
  as a tolerance* rather than asserted: library versions may fuse
  operations differently.  The lowest-index tie-break is preserved exactly
  on every device (the final argmax runs on the host over the downloaded
  similarity matrix).
* ``"torch:mps"`` -- Apple MPS, float32 (MPS has no float64): results carry
  float32 rounding and are compared with an explicit tolerance; threshold
  decisions for similarities within ~1e-6 of ``gamma`` may differ from the
  float64 backends.  Tie-breaks remain lowest-index.

Unavailable dependencies raise
:class:`~repro.similarity.backend.BackendUnavailableError` with an
actionable message at *config-resolution time* (``ClusteringConfig`` /
CLI ``--backend torch``), never deep inside a fit; the core install stays
numpy-only.

Tiling
------
Like the numpy engine, the tensor kernels evaluate in
``(row_tile x column_tile)`` blocks whose row-item and column-item totals
each stay within the configured budget (``block=N``; default
:data:`~repro.similarity.backend.DEFAULT_BLOCK_ITEMS`, ``block=0`` =
unbounded).  A tile fuses several column transactions into one padded 4-D
gather + reduction -- far fewer host/device round trips than the
historical one-column-at-a-time pass -- and bounds peak device scratch at
roughly ``(row_tile_items_padded x column_tile_items_padded)`` elements
per scratch tensor regardless of corpus size (padding rounds each
transaction up to its tile's longest one).  Tiling is result-invariant:
the masked ``amax``/``any`` reductions consume the same gathered floats
per transaction pair for every tile size, so the CPU float64 bit-exactness
and the accelerator tolerance policy above are unchanged.

Sharding policy
---------------
Torch runtimes must not be re-initialised inside multiprocessing pool
workers (CUDA contexts cannot survive ``fork`` and every spawned worker
would pay a fresh runtime/device initialisation).  The backend therefore
refuses nested process sharding cleanly: ``"sharded:N:torch"`` is rejected
at option-parsing time, and cluster-sharded refinement with a torch engine
degrades to the warm in-process serial path
(:func:`~repro.network.mpengine.refine_clusters`).
"""

from __future__ import annotations

from typing import TYPE_CHECKING, List, Optional, Sequence

from repro.similarity.backend import (
    BackendUnavailableError,
    NumpyBackend,
    split_block_option,
)
from repro.transactions.items import TreeTupleItem
from repro.transactions.transaction import Transaction

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.similarity.transaction import SimilarityEngine

#: Devices the backend knows how to validate up front.  Anything else is
#: handed to ``torch.device`` and rejected with the parse error it raises.
KNOWN_DEVICE_TYPES = ("cpu", "cuda", "mps")


def _load_torch():
    """Import torch, raising :class:`BackendUnavailableError` if absent."""
    try:
        import torch
    except ImportError as error:
        raise BackendUnavailableError(
            "the 'torch' similarity backend requires PyTorch, which is not "
            "installed; install the CPU wheel with 'pip install torch "
            "--index-url https://download.pytorch.org/whl/cpu' (or select "
            "--backend numpy / python, which need no optional dependencies)"
        ) from error
    return torch


def torch_importable() -> bool:
    """Return True when PyTorch can be imported in this environment."""
    try:
        _load_torch()
    except BackendUnavailableError:
        return False
    return True


def _resolve_device(torch, spec: Optional[str]):
    """Resolve a device spec (``None``/``"cuda"``/``"cuda:1"``/...).

    Raises ``ValueError`` for specs torch cannot parse and
    :class:`BackendUnavailableError` for well-formed devices that are not
    usable in this environment (e.g. ``cuda`` on a CPU-only wheel), so the
    failure surfaces at config-resolution time with an actionable message.
    """
    name = spec or "cpu"
    try:
        device = torch.device(name)
    except (RuntimeError, ValueError, TypeError) as error:
        raise ValueError(
            f"invalid torch device {name!r} for the torch backend "
            f"(expected 'torch[:device]' with a device such as "
            f"{', '.join(KNOWN_DEVICE_TYPES)})"
        ) from error
    if device.type == "cuda" and not torch.cuda.is_available():
        raise BackendUnavailableError(
            "the 'torch:cuda' backend requires a CUDA-enabled PyTorch build "
            "and a visible GPU (torch.cuda.is_available() is false); select "
            "'torch' for the CPU tensor engine instead"
        )
    if device.type == "mps":
        mps = getattr(getattr(torch, "backends", None), "mps", None)
        if mps is None or not mps.is_available():
            raise BackendUnavailableError(
                "the 'torch:mps' backend requires an Apple-silicon PyTorch "
                "build with MPS support (torch.backends.mps.is_available() "
                "is false); select 'torch' for the CPU tensor engine instead"
            )
    return device


def _split_torch_options(options: Optional[str]) -> tuple:
    """Split ``"[device][:block=N]"`` options into ``(device, block)``.

    The ``block=`` part may appear before or after the device part;
    anything beyond one device part raises ``ValueError``.
    """
    spec = f"torch:{options}" if options else "torch"
    rest, block = split_block_option(options, spec)
    if len(rest) > 1:
        raise ValueError(
            f"invalid torch backend options {options!r} "
            "(expected 'torch[:device][:block=N]')"
        )
    return (rest[0] if rest else None), block


def validate_torch_spec(options: Optional[str] = None) -> None:
    """Validate a ``torch[:device][:block=N]`` spec without building a backend.

    Called by :func:`repro.similarity.backend.validate_backend_spec` (and
    through it by ``ClusteringConfig`` and the CLI) so an uninstalled
    torch, an unusable device or a malformed tile budget fails at
    config-resolution time.
    """
    device, _ = _split_torch_options(options)
    torch = _load_torch()
    _resolve_device(torch, device)


class TorchBackend(NumpyBackend):
    """Tensor backend: the numpy compiled layout evaluated by torch kernels.

    Shares the whole compilation pipeline with
    :class:`~repro.similarity.backend.NumpyBackend` -- the tag-path /
    content-class / uid registries, the pinned and transient compile
    caches, the scalar-function memo blocks -- and overrides the two batch
    kernels (:meth:`_pair_similarities`, :meth:`rank_items_batch`) with
    padded tensor reductions on the configured device.  Every derived entry
    point (``assign_all``, ``score_candidates``, ``nearest_representative``,
    ``transaction_similarity``, ``pairwise_transaction_similarity``)
    inherits the numpy backend's reference-order accumulation and
    lowest-index argmax, so the parity properties documented there carry
    over unchanged on CPU float64.
    """

    name = "torch"

    def __init__(self, engine: "SimilarityEngine", options: Optional[str] = None) -> None:
        torch = _load_torch()
        device, block_items = _split_torch_options(options)
        super().__init__(engine)
        # the tile budget is parsed from the torch option grammar
        # (device and block parts may mix), not by the numpy parser
        self.block_items = block_items
        self._torch = torch
        self.device_spec = device or "cpu"
        self.device = _resolve_device(torch, device)
        # MPS has no float64; everywhere else the kernels run in float64 so
        # CPU results are bit-exact with the scalar reference.
        self.dtype = torch.float32 if self.device.type == "mps" else torch.float64
        self._tp_tensor_cache = None

    # ------------------------------------------------------------------ #
    # Tensor views of the shared compiled state
    # ------------------------------------------------------------------ #
    def _tp_tensor(self):
        """Device tensor view of the dense tag-path similarity matrix.

        Rebuilt (and re-uploaded) only when the shared numpy matrix grew to
        cover new tag paths; the matrix object itself is never mutated in
        place, so a same-size cache is always current.
        """
        matrix = self._ensure_tp_matrix()
        cached = self._tp_tensor_cache
        if cached is None or cached.shape[0] != matrix.shape[0]:
            if not matrix.flags.writeable:
                # a store-attached matrix is a read-only memmap;
                # ``as_tensor`` would warn (and hand torch a non-writable
                # buffer), so upload from a private copy instead
                matrix = self._np.array(matrix)
            cached = self._torch.as_tensor(
                matrix, dtype=self.dtype, device=self.device
            )
            self._tp_tensor_cache = cached
        return cached

    def _index_tensor(self, values):
        """Device ``long`` tensor for an id array (advanced indexing)."""
        return self._torch.as_tensor(
            self._np.ascontiguousarray(values), dtype=self._torch.long
        ).to(self.device)

    # ------------------------------------------------------------------ #
    # Batch kernel
    # ------------------------------------------------------------------ #
    def _padded_ids(self, compiled_tile, values_of):
        """Padded ``(transactions, max_items)`` id array for one tile.

        *values_of* maps a compiled transaction to its per-item id array;
        shorter transactions are zero-padded (pad slots are excluded from
        every reduction through the validity masks).
        """
        np = self._np
        width = max(c.length for c in compiled_tile)
        padded = np.zeros((len(compiled_tile), width), dtype=np.intp)
        for position, compiled in enumerate(compiled_tile):
            padded[position, : compiled.length] = values_of(compiled)
        return padded

    def _tile_mask(self, compiled_tile):
        """Device validity mask ``(transactions, max_items)`` for one tile."""
        np = self._np
        width = max(c.length for c in compiled_tile)
        mask = np.zeros((len(compiled_tile), width), dtype=bool)
        for position, compiled in enumerate(compiled_tile):
            mask[position, : compiled.length] = True
        return self._torch.as_tensor(mask).to(self.device)

    def _pair_similarities(self, rows: Sequence[Transaction], columns: Sequence[Transaction]):
        """The (rows x columns) ``sim^gamma_J`` block via padded tensor tiles.

        Row and column transactions are partitioned into contiguous tiles
        whose item totals stay within
        :attr:`~repro.similarity.backend.NumpyBackend.effective_block_items`
        per side; each ``(row_tile x column_tile)`` pair is padded into
        ``(R, W_r)`` / ``(C, W_c)`` id tensors with validity masks and
        evaluated as one 4-D ``(R, W_r, C, W_c)`` gather + blend, fusing
        every column transaction of the tile into a single pair of masked
        ``amax``/``any`` gamma-match reductions (Eq. 2).  Matched-item and
        union counts reuse the numpy backend's exact integer set arithmetic
        on the host, so the returned float64 numpy matrix feeds the
        inherited entry points unchanged -- and because the reductions are
        order-free over the same gathered floats, every tile size produces
        the same bits.
        """
        np = self._np
        torch = self._torch
        f = self.config.f
        gamma = self.config.gamma
        sims = np.zeros((len(rows), len(columns)), dtype=np.float64)

        compiled_rows = [self._compile(row) for row in rows]
        compiled_columns = [self._compile(column) for column in columns]
        row_positions = [i for i, c in enumerate(compiled_rows) if c.length]
        column_positions = [j for j, c in enumerate(compiled_columns) if c.length]
        if not row_positions or not column_positions:
            return sims

        active_rows = [compiled_rows[i] for i in row_positions]
        active_columns = [compiled_columns[j] for j in column_positions]

        if f != 0.0:
            tp = self._tp_tensor()
        # --- content lookup block (skipped entirely when f == 1) ----------- #
        if f != 1.0:
            row_classes = np.unique(
                np.concatenate([c.content_ids for c in active_rows])
            )
            column_classes = np.unique(
                np.concatenate([c.content_ids for c in active_columns])
            )
            content, row_remap, column_remap = self._content_maps(
                row_classes, column_classes
            )
            content_t = torch.as_tensor(
                content, dtype=self.dtype, device=self.device
            )

        budget = self.effective_block_items
        row_spans = self._tile_spans([c.length for c in active_rows], budget)
        column_spans = self._tile_spans(
            [c.length for c in active_columns], budget
        )

        # per-column-tile tensors (padded ids, validity mask, device
        # uploads) are row-independent: build and upload them once instead
        # of once per (row tile x column tile) pair
        column_tiles = []
        for column_start, column_stop in column_spans:
            tile_columns = active_columns[column_start:column_stop]
            column_tiles.append(
                (
                    column_start,
                    tile_columns,
                    self._tile_mask(tile_columns),
                    self._index_tensor(
                        self._padded_ids(tile_columns, lambda c: c.tag_path_ids)
                    )
                    if f != 0.0
                    else None,
                    self._index_tensor(
                        self._padded_ids(
                            tile_columns, lambda c: column_remap[c.content_ids]
                        )
                    )
                    if f != 1.0
                    else None,
                )
            )

        for row_start, row_stop in row_spans:
            tile_rows = active_rows[row_start:row_stop]
            count = len(tile_rows)
            row_mask = self._tile_mask(tile_rows)
            if f != 0.0:
                row_tp = self._index_tensor(
                    self._padded_ids(tile_rows, lambda c: c.tag_path_ids)
                )
            if f != 1.0:
                row_ck = self._index_tensor(
                    self._padded_ids(
                        tile_rows, lambda c: row_remap[c.content_ids]
                    )
                )
            for (
                column_start,
                tile_columns,
                column_mask,
                column_tp,
                column_ck,
            ) in column_tiles:
                # item-similarity block: same arithmetic as the scalar
                # Eq. 1, including the f == 0 / f == 1 short-circuits.
                if f != 0.0:
                    structural = tp[
                        row_tp.unsqueeze(-1).unsqueeze(-1), column_tp
                    ]
                if f != 1.0:
                    contentpart = content_t[
                        row_ck.unsqueeze(-1).unsqueeze(-1), column_ck
                    ]
                if f == 1.0:
                    block = structural
                elif f == 0.0:
                    block = contentpart
                else:
                    block = f * structural + (1.0 - f) * contentpart
                if block.numel() > self.peak_scratch_entries:
                    self.peak_scratch_entries = block.numel()

                valid = row_mask.unsqueeze(-1).unsqueeze(-1) & column_mask
                masked = block.masked_fill(~valid, float("-inf"))
                # direction tr -> rep: per representative item, the best
                # row item(s) of each padded transaction row; pad slots
                # carry -inf maxima and are excluded through ``valid``.
                column_max = masked.amax(dim=1)
                qualifying = column_max >= gamma
                matched_rows = (
                    (block == column_max.unsqueeze(1))
                    & qualifying.unsqueeze(1)
                    & valid
                ).any(dim=3)
                # direction rep -> tr: per row item, its best item(s)
                # within each column transaction of the tile.
                row_max = masked.amax(dim=3)
                row_qualifies = row_max >= gamma
                matched_columns = (
                    (block == row_max.unsqueeze(-1))
                    & row_qualifies.unsqueeze(-1)
                    & valid
                ).any(dim=1)

                matched_rows_np = matched_rows.cpu().numpy()
                matched_columns_np = matched_columns.cpu().numpy()
                for position in range(count):
                    compiled = tile_rows[position]
                    sims_row = row_positions[row_start + position]
                    for column_index, column in enumerate(tile_columns):
                        matched = set(
                            compiled.uids[
                                matched_rows_np[
                                    position, : compiled.length, column_index
                                ]
                            ].tolist()
                        )
                        matched.update(
                            column.uids[
                                matched_columns_np[
                                    position, column_index, : column.length
                                ]
                            ].tolist()
                        )
                        union = len(compiled.uid_set | column.uid_set)
                        if union:
                            sims[
                                sims_row,
                                column_positions[column_start + column_index],
                            ] = len(matched) / union
        return sims

    # ------------------------------------------------------------------ #
    # Representative refinement (batch ranking)
    # ------------------------------------------------------------------ #
    def rank_items_batch(self, items: Sequence[TreeTupleItem]) -> List[float]:
        """Blended structural/content ranks via tiled device reductions.

        Both gathers walk the same ``(row_tile x column_tile)`` spans as
        the numpy engine (at most
        :attr:`~repro.similarity.backend.NumpyBackend.effective_block_items`
        items per side), bounding peak device scratch for arbitrarily
        large pools.  The structural sums are integer-valued (path
        multiplicities), hence exact under any tiling; the content ranks
        replay the reference left-to-right accumulation column by column
        across the ordered tiles, so on CPU float64 every rank is
        bit-identical to the scalar loop (same guarantee as the numpy
        backend, same memoised cosine block).
        """
        items = list(items)
        n = len(items)
        if not n:
            return []
        np = self._np
        torch = self._torch
        f = self.config.f
        gamma = self.config.gamma
        budget = self.effective_block_items
        item_spans = self._tile_spans([1] * n, budget)

        # --- structural ranking (per distinct complete path) --------------- #
        if f != 0.0:
            path_counts = {}
            for entry in items:
                path_counts[entry.path] = path_counts.get(entry.path, 0) + 1
            distinct_paths = list(path_counts)
            item_tp = self._index_tensor(
                np.array(
                    [self._tag_path_id(entry.tag_path) for entry in items],
                    dtype=np.intp,
                )
            )
            pool_tp = self._index_tensor(
                np.array(
                    [self._tag_path_id(path.tag_path()) for path in distinct_paths],
                    dtype=np.intp,
                )
            )
            tp_tensor = self._tp_tensor()
            counts = torch.as_tensor(
                np.array(
                    [path_counts[path] for path in distinct_paths],
                    dtype=np.float64,
                ),
                dtype=self.dtype,
                device=self.device,
            )
            zero = torch.zeros((), dtype=self.dtype, device=self.device)
            path_spans = self._tile_spans([1] * len(distinct_paths), budget)
            rank_s = torch.zeros(n, dtype=self.dtype, device=self.device)
            for row_start, row_stop in item_spans:
                partial = torch.zeros(
                    row_stop - row_start, dtype=self.dtype, device=self.device
                )
                for column_start, column_stop in path_spans:
                    structural = tp_tensor[
                        item_tp[row_start:row_stop].unsqueeze(-1),
                        pool_tp[column_start:column_stop],
                    ]
                    if structural.numel() > self.peak_scratch_entries:
                        self.peak_scratch_entries = structural.numel()
                    # integer-valued masked sums: exact in any reduction
                    # order and under any tiling
                    partial = partial + torch.where(
                        structural >= gamma,
                        counts[column_start:column_stop].unsqueeze(0),
                        zero,
                    ).sum(dim=1)
                rank_s[row_start:row_stop] = partial / len(distinct_paths)
        else:
            rank_s = torch.zeros(n, dtype=self.dtype, device=self.device)

        # --- content ranking (memoised per-class cosine block) ------------- #
        if f != 1.0:
            class_ids = np.array(
                [self._content_id(entry) for entry in items], dtype=np.intp
            )
            present = np.unique(class_ids)
            block = self._cosine_block(present.tolist())
            remap = np.zeros(len(self._content_exemplars), dtype=np.intp)
            remap[present] = np.arange(len(present), dtype=np.intp)
            local = self._index_tensor(remap[class_ids])
            cosine_t = torch.as_tensor(block, dtype=self.dtype, device=self.device)
            rank_c = torch.zeros(n, dtype=self.dtype, device=self.device)
            for row_start, row_stop in item_spans:
                partial = torch.zeros(
                    row_stop - row_start, dtype=self.dtype, device=self.device
                )
                for column_start, column_stop in item_spans:
                    cosines = cosine_t[
                        local[row_start:row_stop].unsqueeze(-1),
                        local[column_start:column_stop],
                    ]
                    if cosines.numel() > self.peak_scratch_entries:
                        self.peak_scratch_entries = cosines.numel()
                    # accumulate column by column so every rank is the same
                    # sequential left-to-right sum as the reference loop
                    # (tiles walk the columns in order)
                    for j in range(cosines.shape[1]):
                        partial = partial + cosines[:, j]
                rank_c[row_start:row_stop] = partial
            empty = torch.as_tensor(
                np.array([not entry.vector for entry in items], dtype=bool)
            ).to(self.device)
            rank_c = rank_c.masked_fill(empty, 0.0)
        else:
            # the reference blend multiplies rank_C by (1 - f) == 0.0, so any
            # finite value yields the same float; skip the cosine work
            rank_c = torch.zeros(n, dtype=self.dtype, device=self.device)

        ranks = f * rank_s + (1.0 - f) * rank_c
        return [float(rank) for rank in ranks.cpu().tolist()]
