"""Combined tree tuple item similarity (paper Eqs. 1-2).

The overall similarity between two items blends structural and content
similarity through a linear combination controlled by ``f``::

    sim(e_i, e_j) = f * sim_S(e_i, e_j) + (1 - f) * sim_C(e_i, e_j)

``f in [0, 1]`` tunes the influence of structure: the paper uses
``f in [0, 0.3]`` for content-driven clustering, ``[0.4, 0.6]`` for
structure/content-driven clustering and ``[0.7, 1]`` for structure-driven
clustering.  Two items are *gamma-matched* when their similarity reaches the
threshold ``gamma in [0, 1]`` (Eq. 2).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.similarity.content import content_similarity
from repro.similarity.structural import structural_similarity


@dataclass(frozen=True)
class SimilarityConfig:
    """Parameters of the XML transaction similarity function.

    Attributes
    ----------
    f:
        Structure/content blending factor (Eq. 1).
    gamma:
        Matching threshold used by the gamma-shared item sets (Eq. 2); the
        paper's best settings sit around 0.85.
    """

    f: float = 0.5
    gamma: float = 0.85

    def __post_init__(self) -> None:
        if not 0.0 <= self.f <= 1.0:
            raise ValueError(f"f must lie in [0, 1], got {self.f}")
        if not 0.0 <= self.gamma <= 1.0:
            raise ValueError(f"gamma must lie in [0, 1], got {self.gamma}")

    # -- clustering-goal helpers (Sec. 5.1) ------------------------------- #
    @property
    def clustering_goal(self) -> str:
        """Return the paper's name for the goal implied by ``f``."""
        if self.f <= 0.3:
            return "content-driven"
        if self.f <= 0.6:
            return "structure/content-driven"
        return "structure-driven"

    @staticmethod
    def content_driven(f: float = 0.2, gamma: float = 0.85) -> "SimilarityConfig":
        """Preset for content-driven clustering (``f in [0, 0.3]``)."""
        if not 0.0 <= f <= 0.3:
            raise ValueError("content-driven configurations require f in [0, 0.3]")
        return SimilarityConfig(f=f, gamma=gamma)

    @staticmethod
    def hybrid(f: float = 0.5, gamma: float = 0.85) -> "SimilarityConfig":
        """Preset for structure/content-driven clustering (``f in [0.4, 0.6]``)."""
        if not 0.4 <= f <= 0.6:
            raise ValueError("hybrid configurations require f in [0.4, 0.6]")
        return SimilarityConfig(f=f, gamma=gamma)

    @staticmethod
    def structure_driven(f: float = 0.8, gamma: float = 0.85) -> "SimilarityConfig":
        """Preset for structure-driven clustering (``f in [0.7, 1]``)."""
        if not 0.7 <= f <= 1.0:
            raise ValueError("structure-driven configurations require f in [0.7, 1]")
        return SimilarityConfig(f=f, gamma=gamma)


def item_similarity(
    item_i,
    item_j,
    config: SimilarityConfig,
    structural: Optional[float] = None,
) -> float:
    """Combined similarity between two tree tuple items (Eq. 1).

    Parameters
    ----------
    item_i, item_j:
        The tree tuple items to compare.
    config:
        Blending factor and threshold.
    structural:
        Optional pre-computed structural similarity (e.g. from the tag-path
        similarity cache); when ``None`` it is computed on the fly.
    """
    sim_s = structural if structural is not None else structural_similarity(item_i, item_j)
    if config.f == 1.0:
        return sim_s
    sim_c = content_similarity(item_i, item_j)
    if config.f == 0.0:
        return sim_c
    return config.f * sim_s + (1.0 - config.f) * sim_c


def gamma_matched(
    item_i,
    item_j,
    config: SimilarityConfig,
    structural: Optional[float] = None,
) -> bool:
    """Return True when the two items are gamma-matched (Eq. 2)."""
    return item_similarity(item_i, item_j, config, structural=structural) >= config.gamma
