"""Pluggable similarity backends and the vectorized batch engine.

Every clustering algorithm of the reproduction (XK-means, PK-means,
CXK-means) spends nearly all of its runtime evaluating the transaction
similarity ``sim^gamma_J`` between data transactions and cluster
representatives.  The reference implementation walks every item pair in
Python, which is faithful to the paper but far from "as fast as the
hardware allows".  This module turns the similarity layer into a pluggable
architecture:

* :class:`SimilarityBackend` -- the protocol every backend implements:
  scalar item / transaction similarity, a batched
  ``pairwise_transaction_similarity`` and the bulk ``assign_all`` entry
  point used by the assignment step of the clustering loops;
* ``"python"`` -- :class:`PythonBackend`, a thin wrapper around the
  reference loops of :class:`~repro.similarity.transaction.SimilarityEngine`
  (byte-for-byte the historical behaviour);
* ``"numpy"`` -- :class:`NumpyBackend`, which compiles transactions once
  into feature blocks (tag-path id arrays indexing a dense precomputed
  structural-similarity matrix, content-class id arrays indexing a memoised
  content-similarity block, item-uid arrays for the union counts) and
  evaluates the two directed gamma-match passes as vectorized row/column
  reductions over ``(row_tile x column_tile)`` blocks of bounded item
  budget (``"numpy[:block=N]"``, default :data:`DEFAULT_BLOCK_ITEMS`;
  ``block=0`` = unbounded), so peak scratch memory never grows with the
  corpus;
* ``"sharded"`` -- :class:`ShardedBackend`, which splits the rows of the
  bulk ``assign_all`` call into contiguous blocks evaluated by worker
  processes (each with a cached per-process engine, see
  :mod:`repro.network.mpengine`) and concatenates the per-block results in
  block order; every other entry point is served in-process by an inner
  ``numpy``/``python`` backend.  Selected as
  ``"sharded[:workers[:inner]]"`` where the inner spec may carry its own
  options (``"sharded:4:numpy:block=64"`` -- workers inherit the tile
  configuration);
* ``"torch"`` -- :class:`~repro.similarity.torch_backend.TorchBackend`
  (registered lazily; optional dependency), which evaluates the numpy
  compiled-corpus layout as padded tensor kernels on a configurable device,
  tiled by the same item budget.  Selected as ``"torch[:device][:block=N]"``
  (``torch``, ``torch:cuda``, ``torch:cuda:block=4096``, ``torch:mps``);
  bit-exact on CPU float64, documented tolerance on accelerator devices.

Since this PR the protocol also covers the CXK-means *summarisation*
machinery: :meth:`SimilarityBackend.score_candidates` evaluates every
candidate tree tuple of one ``GenerateTreeTuple`` refinement as a batched
cluster-vs-candidates block, and :meth:`SimilarityBackend.rank_items_batch`
computes the blended structural/content item ranks of a whole item pool at
once (the numpy backend reuses the compiled tag-path matrix and memoises
TCU cosines per content class).

Bit-exact parity
----------------
The numpy backend is *bit-exact* with the python reference, not merely
approximately equal:

* structural similarities are read from the same shared
  :class:`~repro.similarity.cache.TagPathSimilarityCache`;
* content similarities are computed by the same scalar
  :func:`~repro.similarity.content.content_similarity` function, memoised
  per ordered pair of *content classes* (the ordered term/weight tuple of a
  TCU vector, or the raw answer for empty TCUs -- exactly the information
  that function consumes);
* the blend ``f * sim_S + (1 - f) * sim_C`` is evaluated elementwise with
  the same IEEE-754 operation order as the scalar code, including the
  ``f == 0`` / ``f == 1`` short-circuits.

Because every item similarity is therefore the *same float* in both
backends, all gamma-threshold comparisons, argmax tie sets, match counts
and the final integer-ratio transaction similarities coincide, and a
clustering run with a fixed seed produces identical assignments under
either backend.  The parity suite in ``tests/test_similarity_backend.py``
asserts this property.

Backends are registered by name; third parties can plug in their own
(e.g. sharded or GPU implementations) through :func:`register_backend`.
"""

from __future__ import annotations

from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    List,
    Optional,
    Sequence,
    Set,
    Tuple,
)

try:  # pragma: no cover - Protocol exists on every supported Python
    from typing import Protocol, runtime_checkable
except ImportError:  # pragma: no cover
    Protocol = object  # type: ignore[assignment]

    def runtime_checkable(cls):  # type: ignore[no-redef]
        """Fallback no-op decorator for Pythons without typing.Protocol."""
        return cls

from repro.similarity.content import content_similarity
from repro.transactions.items import TreeTupleItem
from repro.transactions.transaction import Transaction
from repro.xmlmodel.paths import XMLPath

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.similarity.transaction import SimilarityEngine

#: Name of the backend used when none is requested explicitly.
DEFAULT_BACKEND = "python"

#: Default item budget per tile side of the batched kernels.  Every batch
#: backend evaluates its similarity blocks in ``(row_tile x column_tile)``
#: tiles whose row-item and column-item totals each stay within this
#: budget, so peak scratch memory is bounded by roughly
#: ``budget**2 * 8`` bytes per scratch array regardless of corpus size.
#: Overridable per backend spec (``numpy:block=N``) or through
#: :attr:`~repro.core.config.ClusteringConfig.batch_block_items`;
#: ``block=0`` selects the unbounded single-tile (untiled) path.
DEFAULT_BLOCK_ITEMS = 2048


class BackendUnavailableError(RuntimeError):
    """Raised when a registered backend cannot run in this environment."""


def _unknown_backend_message(spec) -> str:
    """The single unknown-backend error message shared by every entry point.

    :func:`create_backend`, :func:`validate_backend_spec` (and through it
    ``ClusteringConfig`` and the CLI) all raise exactly this text, so a
    misspelled spec lists the same registered alternatives no matter where
    the user wrote it.
    """
    return (
        f"unknown similarity backend: {spec!r} "
        f"(registered: {', '.join(sorted(_REGISTRY))})"
    )


def split_block_option(
    options: Optional[str], spec: str
) -> Tuple[List[str], Optional[int]]:
    """Split ``block=N`` parts out of a backend option string.

    Returns ``(remaining_parts, block_items)`` where *remaining_parts* are
    the non-empty, non-``block=`` option parts in order and *block_items*
    is ``None`` when the spec carries no block option.  ``block=0`` is the
    explicit unbounded (untiled single-tile) selection; negative or
    non-integer values and duplicate ``block=`` parts raise ``ValueError``
    naming *spec* so config-resolution-time validation points at the spec
    the user wrote.
    """
    block: Optional[int] = None
    rest: List[str] = []
    if not options:
        return rest, block
    for part in options.split(":"):
        if part.startswith("block="):
            if block is not None:
                raise ValueError(
                    f"duplicate 'block=' option in backend spec {spec!r}"
                )
            value = part[len("block="):]
            try:
                block = int(value)
            except ValueError:
                raise ValueError(
                    f"invalid batch block size {value!r} in backend spec "
                    f"{spec!r} (expected 'block=N' with an integer N >= 0; "
                    "0 selects the unbounded untiled path)"
                ) from None
            if block < 0:
                raise ValueError(
                    f"batch block size must be >= 0 (0 = unbounded), got "
                    f"{block} in backend spec {spec!r}"
                )
        elif part:
            rest.append(part)
    return rest, block


def spec_block_items(spec: Optional[str]) -> Optional[int]:
    """The ``block=`` budget a backend spec will actually run with.

    Resolves the spec the way the factories do: ``numpy``/``torch`` specs
    are scanned for a ``block=`` option, ``sharded`` specs defer to their
    inner spec, and specs without batch kernels (``python``) or without a
    ``block=`` option return ``None`` (backend default).  Malformed specs
    also return ``None`` -- this is a read-only resolver; validation stays
    with :func:`validate_backend_spec`.
    """
    key = (spec or DEFAULT_BACKEND).lower()
    base, _, options = key.partition(":")
    if base == "sharded":
        parts = options.split(":") if options else []
        inner = ":".join(parts[1:]) if len(parts) > 1 else ""
        return spec_block_items(inner) if inner else None
    if base not in ("numpy", "torch"):
        return None
    try:
        _, block = split_block_option(options or None, key)
    except ValueError:
        return None
    return block


def merge_block_option(spec: Optional[str], block_items: Optional[int]) -> str:
    """Merge a tile budget into a backend spec string.

    The spec-level threading used by
    :attr:`~repro.core.config.ClusteringConfig.effective_backend`: the
    returned (normalised, lower-cased) spec carries ``block={block_items}``
    wherever the tiled batch kernels will actually run --

    * ``numpy`` / ``torch`` specs gain a trailing ``:block=N`` part unless
      they already carry an explicit ``block=`` option (the more specific
      spec-level option wins);
    * ``sharded`` specs thread the budget into their *inner* backend spec
      (resolving the default inner first), so worker processes inherit the
      tile configuration through the shard payload's backend string;
    * the ``python`` reference backend has no batch scratch blocks to
      bound, so its spec is returned unchanged.

    ``block_items=None`` leaves the spec untouched (backend default).
    """
    key = (spec or DEFAULT_BACKEND).lower()
    if block_items is None:
        return key
    base, _, options = key.partition(":")
    if base == "sharded":
        parts = options.split(":") if options else []
        workers = parts[0] if parts else ""
        inner = ":".join(parts[1:]) if len(parts) > 1 else ""
        if not inner:
            inner = "numpy" if _numpy_importable() else "python"
        return f"sharded:{workers}:{merge_block_option(inner, block_items)}"
    if base not in ("numpy", "torch"):
        return key
    if options and any(
        part.startswith("block=") for part in options.split(":")
    ):
        return key
    return f"{key}:block={block_items}"


def _load_numpy():
    """Import numpy, raising a :class:`BackendUnavailableError` if absent."""
    try:
        import numpy
    except ImportError as error:  # pragma: no cover - numpy ships in the image
        raise BackendUnavailableError(
            "the 'numpy' similarity backend requires numpy; install numpy or "
            "select backend='python'"
        ) from error
    return numpy


def _numpy_importable() -> bool:
    try:
        _load_numpy()
    except BackendUnavailableError:  # pragma: no cover - see above
        return False
    return True


def _torch_importable() -> bool:
    """True when the optional torch dependency can be imported."""
    from repro.similarity.torch_backend import torch_importable

    return torch_importable()


# --------------------------------------------------------------------------- #
# The backend protocol
# --------------------------------------------------------------------------- #
@runtime_checkable
class SimilarityBackend(Protocol):
    """Interface of a similarity backend.

    A backend answers the same questions as the reference
    :class:`~repro.similarity.transaction.SimilarityEngine`, plus two batch
    entry points that let implementations amortise per-call work across a
    whole corpus:

    * :meth:`pairwise_transaction_similarity` evaluates a block of
      ``sim^gamma_J`` values at once;
    * :meth:`assign_all` performs the complete assignment step (every
      transaction against every representative) of one clustering
      iteration.
    """

    name: str

    def item_similarity(self, item_a: TreeTupleItem, item_b: TreeTupleItem) -> float:
        """Combined item similarity (Eq. 1)."""
        ...

    def gamma_shared_items(
        self, tr1: Transaction, tr2: Transaction
    ) -> Set[TreeTupleItem]:
        """The gamma-shared item set ``match_gamma(tr1, tr2)`` (Eq. 2)."""
        ...

    def transaction_similarity(self, tr1: Transaction, tr2: Transaction) -> float:
        """XML transaction similarity ``sim^gamma_J`` (Eq. 4)."""
        ...

    def pairwise_transaction_similarity(
        self, rows: Sequence[Transaction], columns: Sequence[Transaction]
    ) -> List[List[float]]:
        """Matrix of ``sim^gamma_J(rows[i], columns[j])`` values."""
        ...

    def nearest_representative(
        self, transaction: Transaction, representatives: Sequence[Transaction]
    ) -> Tuple[int, float]:
        """(index, similarity) of the most similar representative."""
        ...

    def assign_all(
        self,
        transactions: Sequence[Transaction],
        representatives: Sequence[Transaction],
    ) -> List[Tuple[int, float]]:
        """Bulk assignment: one (index, similarity) pair per transaction."""
        ...

    def compile_corpus(self, transactions: Sequence[Transaction]) -> int:
        """Pre-compile *transactions* for reuse across iterations.

        Returns the number of transactions compiled (0 for backends that
        have nothing to precompute).
        """
        ...

    def extend_corpus(
        self, transactions: Sequence[Transaction], *, pin: bool = False
    ) -> int:
        """Delta-compile *transactions* on top of the existing corpus.

        Only transactions the backend has not already compiled (pinned or
        covered by an attached store) are processed; registries and
        feature blocks grow by the delta with first-occurrence numbering
        preserved, so fingerprints stay stable across chunked ingestion.
        ``pin=True`` additionally pins the new compilations (batch-corpus
        semantics); the default leaves them evictable so a streaming
        caller's memory stays bounded.  Returns the number of newly
        compiled transactions (0 for backends with nothing to precompute).
        """
        ...

    def score_candidates(
        self, cluster: Sequence[Transaction], candidates: Sequence[Transaction]
    ) -> List[float]:
        """Cohesion score of each candidate representative against *cluster*.

        The score of a candidate is the sum of its ``sim^gamma_J``
        similarities to every cluster member (the objective GenerateTreeTuple
        maximises); one call evaluates all candidate tree tuples of a
        refinement step.
        """
        ...

    def rank_items_batch(self, items: Sequence[TreeTupleItem]) -> List[float]:
        """Blended (pre-weight) structural/content ranks of *items*.

        Returns one ``f * rank_S + (1 - f) * rank_C`` value per item, in
        input order; sorting, tie-breaking and the global-case weights stay
        in :func:`repro.core.representatives.rank_items`.
        """
        ...


# --------------------------------------------------------------------------- #
# Reference backend
# --------------------------------------------------------------------------- #
class PythonBackend:
    """The reference backend: pure-Python loops, no compilation.

    Delegates every scalar computation to the owning
    :class:`~repro.similarity.transaction.SimilarityEngine`, whose methods
    carry the historical reference implementation; the batch entry points
    are plain loops over the scalar ones, so behaviour is byte-for-byte
    identical to the pre-backend code.
    """

    name = "python"

    def __init__(self, engine: "SimilarityEngine") -> None:
        self.engine = engine

    def item_similarity(self, item_a: TreeTupleItem, item_b: TreeTupleItem) -> float:
        """Combined item similarity (Eq. 1), the scalar reference loop."""
        return self.engine.item_similarity(item_a, item_b)

    def gamma_shared_items(
        self, tr1: Transaction, tr2: Transaction
    ) -> Set[TreeTupleItem]:
        """Gamma-shared item set ``match_gamma(tr1, tr2)`` (Eq. 2)."""
        return self.engine.gamma_shared_items(tr1, tr2)

    def transaction_similarity(self, tr1: Transaction, tr2: Transaction) -> float:
        """Transaction similarity ``sim^gamma_J`` (Eq. 4), reference loop."""
        return self.engine.transaction_similarity(tr1, tr2)

    def pairwise_transaction_similarity(
        self, rows: Sequence[Transaction], columns: Sequence[Transaction]
    ) -> List[List[float]]:
        """Similarity block as nested lists: one scalar call per pair."""
        similarity = self.engine.transaction_similarity
        return [[similarity(row, column) for column in columns] for row in rows]

    def nearest_representative(
        self, transaction: Transaction, representatives: Sequence[Transaction]
    ) -> Tuple[int, float]:
        """(index, similarity) of the best representative; ties break to
        the lowest index (strictly-greater update rule)."""
        return self.engine.nearest_representative(transaction, representatives)

    def assign_all(
        self,
        transactions: Sequence[Transaction],
        representatives: Sequence[Transaction],
    ) -> List[Tuple[int, float]]:
        """Bulk assignment as a plain loop over
        :meth:`nearest_representative`, one result per transaction in input
        order (byte-for-byte the historical behaviour)."""
        # hoist the representatives' item sets out of the transaction loop
        representative_item_sets = [
            representative.item_set() for representative in representatives
        ]
        nearest = self.engine.nearest_representative
        return [
            nearest(transaction, representatives, representative_item_sets)
            for transaction in transactions
        ]

    def compile_corpus(self, transactions: Sequence[Transaction]) -> int:
        """No-op: the reference loops have nothing to precompute (returns 0)."""
        return 0

    def extend_corpus(
        self, transactions: Sequence[Transaction], *, pin: bool = False
    ) -> int:
        """No-op: there is no compiled state to extend (returns 0)."""
        return 0

    def score_candidates(
        self, cluster: Sequence[Transaction], candidates: Sequence[Transaction]
    ) -> List[float]:
        """Per-candidate cohesion scores (sum of ``sim^gamma_J`` to every
        cluster member, accumulated in member order -- the float any
        bit-exact backend must reproduce)."""
        similarity = self.engine.transaction_similarity
        return [
            sum(similarity(member, candidate) for member in cluster)
            for candidate in candidates
        ]

    def rank_items_batch(self, items: Sequence[TreeTupleItem]) -> List[float]:
        """Blended item ranks via the reference loops
        (:func:`repro.core.representatives.reference_item_ranks`)."""
        # the reference loops live next to the ranking definitions; imported
        # lazily to keep the module graph acyclic
        from repro.core.representatives import reference_item_ranks

        return reference_item_ranks(items, self.engine)


# --------------------------------------------------------------------------- #
# Vectorized backend
# --------------------------------------------------------------------------- #
class _CompiledTransaction:
    """Feature-block view of one transaction (arrays over its items)."""

    __slots__ = ("length", "tag_path_ids", "content_ids", "uids", "_uid_set")

    def __init__(self, length, tag_path_ids, content_ids, uids, uid_set=None) -> None:
        self.length = length
        self.tag_path_ids = tag_path_ids
        self.content_ids = content_ids
        self.uids = uids
        self._uid_set = uid_set

    @property
    def uid_set(self):
        """Frozen uid set for the union counts, built lazily.

        Store-attached views slice their uid arrays straight out of a
        memmap; deferring the python-set materialisation keeps the attach
        path free of per-item work until a kernel actually needs the set.
        """
        uid_set = self._uid_set
        if uid_set is None:
            uid_set = frozenset(self.uids.tolist())
            self._uid_set = uid_set
        return uid_set


class NumpyBackend:
    """Vectorized batch backend built on numpy array kernels.

    Transactions are compiled once into three parallel integer arrays:

    * ``tag_path_ids`` indexing a dense structural-similarity matrix whose
      entries come from the shared tag-path cache (the paper's Sec. 4.3.2
      precomputation, materialised as an array);
    * ``content_ids`` indexing a memoised content-similarity block keyed by
      *content class* (the ordered term/weight tuple of the TCU vector, or
      the raw answer for empty TCUs), computed with the exact scalar
      :func:`~repro.similarity.content.content_similarity`;
    * ``uids`` (canonical item identifiers under transaction-item equality)
      used for the ``|match_gamma|`` and ``|tr1 ∪ tr2|`` set counts.

    The two directed gamma-match passes of Eq. 2 then become masked
    row/column max-reductions over the gathered item-similarity block.
    The batch kernels evaluate in *tiles*: contiguous groups of row and
    column transactions whose item totals each stay within the configured
    budget (``"numpy:block=N"``, default :data:`DEFAULT_BLOCK_ITEMS`,
    ``block=0`` = unbounded), so several column transactions are fused
    into one set of array reductions per tile -- fewer Python-loop
    iterations than the historical one-column-at-a-time pass -- while peak
    scratch memory stays bounded by the tile size instead of growing with
    the corpus.  Tiling never changes a result: the fused reductions are
    segment-wise max/any passes over the exact same gathered floats, so
    every tile size is bit-exact with every other (and with the scalar
    reference); :attr:`peak_scratch_entries` records the high-water scratch
    block size actually materialised.
    """

    name = "numpy"

    #: Entries allowed in the transient compile cache before it is pruned
    #: (representative candidates churn quickly during refinement).
    TRANSIENT_CAP = 8192

    #: Default tile budget (items per tile side) when the spec carries no
    #: ``block=`` option; see :data:`DEFAULT_BLOCK_ITEMS`.
    DEFAULT_BLOCK_ITEMS = DEFAULT_BLOCK_ITEMS

    def __init__(
        self, engine: "SimilarityEngine", options: Optional[str] = None
    ) -> None:
        self._np = _load_numpy()
        rest, block_items = split_block_option(
            options, f"numpy:{options}" if options else "numpy"
        )
        if rest:
            raise ValueError(
                f"invalid numpy backend options {options!r} "
                "(expected 'numpy[:block=N]')"
            )
        #: Configured tile budget: ``None`` = backend default, ``0`` =
        #: unbounded (untiled single-tile path), ``N`` = at most N row
        #: items x N column items of scratch per tile.
        self.block_items = block_items
        #: High-water mark of batch-kernel scratch entries (elements of the
        #: largest item-similarity block materialised so far); benchmarks
        #: read this to demonstrate the tile-size memory bound.
        self.peak_scratch_entries = 0
        self.engine = engine
        self.config = engine.config
        self.cache = engine.cache
        # --- registries shared by every compiled transaction -------------- #
        self._tag_paths: List[XMLPath] = []
        self._tag_path_index: Dict[XMLPath, int] = {}
        self._tp_matrix = self._np.zeros((0, 0), dtype=self._np.float64)
        self._content_index: Dict[tuple, int] = {}
        self._content_exemplars: List[TreeTupleItem] = []
        self._content_memo: Dict[Tuple[int, int], float] = {}
        self._cosine_memo: Dict[Tuple[int, int], float] = {}
        self._uid_index: Dict[TreeTupleItem, int] = {}
        # --- compiled transactions ---------------------------------------- #
        # The pinned cache is keyed by transaction *value* (transactions are
        # frozen dataclasses hashing by content): multiprocessing workers
        # that unpickle a fresh copy of their partition every round, and
        # serial runs where several peers share one engine, all land on the
        # same entries, so the cache size stays bounded by the number of
        # distinct corpus transactions.  The transient cache (representative
        # candidates churning through refinement) is identity-keyed and
        # pruned once it exceeds TRANSIENT_CAP.
        self._pinned: Dict[Transaction, _CompiledTransaction] = {}
        self._transient: Dict[int, Tuple[Transaction, _CompiledTransaction]] = {}
        # --- persistent compiled-corpus store ------------------------------ #
        #: Handle of the attached :class:`~repro.similarity.corpus_store.
        #: CorpusStore` (None when running without a store).
        self.attached_store = None
        #: Transactions compiled through :meth:`compile_corpus`; a warm
        #: store attach leaves this at 0 (asserted by tests / CI smoke).
        self.corpus_compile_count = 0
        # (corpus list, tag-path ids, content ids, uids, spans) memmap
        # views adopted by :meth:`attach_store`, plus the lazily built
        # transaction -> row map over them.
        self._attached = None
        self._attached_rows: Optional[Dict[Transaction, int]] = None
        # uid/content registries are rebuilt lazily after an attach; True
        # means they are authoritative (fresh engines start hydrated).
        self._hydrated = True

    # ------------------------------------------------------------------ #
    # Registries
    # ------------------------------------------------------------------ #
    def _tag_path_id(self, tag_path: XMLPath) -> int:
        index = self._tag_path_index.get(tag_path)
        if index is None:
            index = len(self._tag_paths)
            self._tag_path_index[tag_path] = index
            self._tag_paths.append(tag_path)
        return index

    @staticmethod
    def _content_key(item: TreeTupleItem) -> tuple:
        """Return the content class of an item.

        :func:`content_similarity` depends only on the two TCU vectors'
        ordered (term, weight) sequences -- the dot product iterates dict
        insertion order, so the *ordered* tuple pins the float result
        exactly -- falling back to raw-answer equality when both vectors
        are empty.  The key captures precisely that information.  Static
        because the corpus store derives the identical content classes
        when exporting a compiled corpus.
        """
        vector = item.vector
        if vector:
            return ("v", tuple(vector.items()))
        return ("e", item.answer)

    def _content_id(self, item: TreeTupleItem) -> int:
        if not self._hydrated:
            self._ensure_hydrated()
        key = self._content_key(item)
        index = self._content_index.get(key)
        if index is None:
            index = len(self._content_exemplars)
            self._content_index[key] = index
            self._content_exemplars.append(item)
        return index

    def _uid(self, item: TreeTupleItem) -> int:
        if not self._hydrated:
            self._ensure_hydrated()
        uid = self._uid_index.get(item)
        if uid is None:
            uid = len(self._uid_index)
            self._uid_index[item] = uid
        return uid

    def _ensure_tp_matrix(self):
        """Grow the dense structural-similarity matrix to cover every
        registered tag path, filling new entries from the shared cache so
        the floats match the python backend bit-for-bit."""
        np = self._np
        old = self._tp_matrix.shape[0]
        size = len(self._tag_paths)
        if size == old:
            return self._tp_matrix
        matrix = np.empty((size, size), dtype=np.float64)
        matrix[:old, :old] = self._tp_matrix
        similarity = self.cache.similarity
        paths = self._tag_paths
        for i in range(size):
            path_i = paths[i]
            start = old if i < old else 0
            for j in range(start, size):
                value = similarity(path_i, paths[j])
                matrix[i, j] = value
                matrix[j, i] = value
        self._tp_matrix = matrix
        return matrix

    # ------------------------------------------------------------------ #
    # Persistent compiled-corpus store
    # ------------------------------------------------------------------ #
    def attach_store(self, store, transactions=None) -> bool:
        """Adopt a persistent compiled corpus instead of recompiling it.

        On a pristine backend (nothing compiled yet) the store's array
        blocks are attached zero-copy: the tag-path registry and the
        read-only memmapped structural-similarity matrix become
        authoritative immediately, per-transaction array views materialise
        on first compile touch, and the uid/content registries hydrate
        lazily on first use (:meth:`_ensure_hydrated`) -- so a warm attach
        does no per-item work at all.  On a backend that already compiled
        transactions, only the handle is kept (the shard dispatch still
        uses it to address rows); returns True on a zero-copy attach.

        Bit-exactness is preserved because the store records precisely the
        first-occurrence registries and cache floats a fresh compile of
        the same corpus produces.
        """
        self.attached_store = store
        if self._pinned or self._tag_paths:
            return False
        np = self._np
        arrays = store.arrays()
        self._tag_paths = list(store.tag_paths())
        self._tag_path_index = {
            path: index for index, path in enumerate(self._tag_paths)
        }
        self._tp_matrix = arrays["tp_matrix"]
        if transactions is not None:
            store.bind_transactions(transactions)
        corpus = store.transactions()
        self._attached = (
            corpus,
            arrays["item_tag_path_ids"].astype(np.intp, copy=False),
            arrays["item_content_ids"].astype(np.intp, copy=False),
            arrays["item_uids"].astype(np.intp, copy=False),
            arrays["tx_spans"],
        )
        self._attached_rows = None
        self._hydrated = False
        return True

    def _attached_compiled(self, transaction: Transaction):
        """Store-backed compiled view of *transaction*, or None.

        Resolves the transaction (by value) to its corpus row and slices
        the shared id arrays -- views over the memmap, no copies.  The
        row map over the attached corpus is built on first miss of the
        pinned cache, i.e. never on the pure warm-attach path.
        """
        attached = self._attached
        if attached is None:
            return None
        corpus, tag_path_ids, content_ids, uids, spans = attached
        rows = self._attached_rows
        if rows is None:
            rows = {t: row for row, t in enumerate(corpus)}
            self._attached_rows = rows
        row = rows.get(transaction)
        if row is None:
            return None
        start = int(spans[row])
        stop = int(spans[row + 1])
        return _CompiledTransaction(
            length=stop - start,
            tag_path_ids=tag_path_ids[start:stop],
            content_ids=content_ids[start:stop],
            uids=uids[start:stop],
        )

    def _ensure_hydrated(self) -> None:
        """Rebuild the uid/content registries from the attached corpus.

        Deferred until something actually needs them (compiling a *new*
        transaction, scalar item kernels, content blocks).  Walking the
        corpus in order reproduces the exact fresh-compile registries:
        uids were stored dense in first-occurrence order, and a content
        id equal to the current exemplar count marks the first occurrence
        of its class -- the same exemplar item a fresh compile would keep.
        """
        if self._hydrated:
            return
        self._hydrated = True
        corpus, _, content_ids, uids, _ = self._attached
        uid_index = self._uid_index
        content_index = self._content_index
        exemplars = self._content_exemplars
        content_key = self._content_key
        position = 0
        for transaction in corpus:
            for item in transaction.items:
                if item not in uid_index:
                    uid_index[item] = int(uids[position])
                content_id = int(content_ids[position])
                if content_id == len(exemplars):
                    exemplars.append(item)
                    content_index[content_key(item)] = content_id
                position += 1

    # ------------------------------------------------------------------ #
    # Compilation
    # ------------------------------------------------------------------ #
    def _compile(self, transaction: Transaction) -> _CompiledTransaction:
        compiled = self._pinned.get(transaction)
        if compiled is not None:
            return compiled
        key = id(transaction)
        entry = self._transient.get(key)
        if entry is not None and entry[0] is transaction:
            return entry[1]
        compiled = self._attached_compiled(transaction)
        if compiled is not None:
            self._pinned[transaction] = compiled
            return compiled
        compiled = self._compile_items(transaction)
        if len(self._transient) >= self.TRANSIENT_CAP:
            self._transient.clear()
        self._transient[key] = (transaction, compiled)
        return compiled

    def _compile_items(self, transaction: Transaction) -> _CompiledTransaction:
        np = self._np
        items = transaction.items
        n = len(items)
        tag_path_ids = np.empty(n, dtype=np.intp)
        content_ids = np.empty(n, dtype=np.intp)
        uids = np.empty(n, dtype=np.intp)
        for position, item in enumerate(items):
            tag_path_ids[position] = self._tag_path_id(item.tag_path)
            content_ids[position] = self._content_id(item)
            uids[position] = self._uid(item)
        return _CompiledTransaction(
            length=n,
            tag_path_ids=tag_path_ids,
            content_ids=content_ids,
            uids=uids,
        )

    def compile_corpus(self, transactions: Sequence[Transaction]) -> int:
        """Compile *transactions* into the pinned (never-evicted) cache.

        Call this once per corpus -- e.g. at experiment start-up, or when
        several simulated nodes share one engine -- so every clustering
        iteration reuses the same feature blocks.

        Pins are keyed by transaction value, so re-presenting the same
        corpus -- even as freshly unpickled copies in a multiprocessing
        worker -- costs one dictionary probe per transaction and adds no
        new entries.  Transactions covered by an attached store pin their
        memmap-backed views without any compile work (and without
        counting).  Returns the number of newly *compiled* transactions
        and accumulates it in :attr:`corpus_compile_count`.
        """
        count = 0
        for transaction in transactions:
            if transaction in self._pinned:
                continue
            attached = self._attached_compiled(transaction)
            if attached is not None:
                self._pinned[transaction] = attached
                continue
            self._pinned[transaction] = self._compile_items(transaction)
            count += 1
        self._ensure_tp_matrix()
        self.corpus_compile_count += count
        return count

    def extend_corpus(
        self, transactions: Sequence[Transaction], *, pin: bool = False
    ) -> int:
        """Delta-compile *transactions* on top of the existing corpus.

        The incremental sibling of :meth:`compile_corpus`: transactions
        already pinned or covered by an attached store are skipped, and
        new ones extend the tag-path / content-class / uid registries in
        first-occurrence order -- exactly the numbering a monolithic
        compile of the concatenated corpus would assign, which is what
        keeps store fingerprints stable under chunked ingestion.  The
        structural matrix grows by the new paths' rows only
        (:meth:`_ensure_tp_matrix` fills just the added entries from the
        shared cache), so the cost of an append is proportional to the
        delta, never the accumulated corpus.

        With ``pin=False`` (the default) new compilations land in the
        bounded transient cache instead of the pinned one, so a streaming
        caller can ingest an unbounded corpus without the backend holding
        every transaction alive.  Returns the newly compiled count and
        accumulates it in :attr:`corpus_compile_count`.
        """
        count = 0
        for transaction in transactions:
            if transaction in self._pinned:
                continue
            attached = self._attached_compiled(transaction)
            if attached is not None:
                if pin:
                    self._pinned[transaction] = attached
                continue
            compiled = self._compile_items(transaction)
            count += 1
            if pin:
                self._pinned[transaction] = compiled
            else:
                if len(self._transient) >= self.TRANSIENT_CAP:
                    self._transient.clear()
                self._transient[id(transaction)] = (transaction, compiled)
        self._ensure_tp_matrix()
        self.corpus_compile_count += count
        return count

    # ------------------------------------------------------------------ #
    # Content block
    # ------------------------------------------------------------------ #
    def _content_block(self, row_classes, column_classes):
        """Dense content-similarity block for the given content-class ids.

        Entries are memoised per *ordered* (row class, column class) pair:
        the scalar kernel is not perfectly symmetric at the ULP level (the
        sparse dot iterates the smaller operand), and the reference code
        always evaluates ``sim(transaction item, representative item)`` in
        that order.
        """
        if not self._hydrated:
            self._ensure_hydrated()
        np = self._np
        memo = self._content_memo
        exemplars = self._content_exemplars
        block = np.empty((len(row_classes), len(column_classes)), dtype=np.float64)
        for i, row_class in enumerate(row_classes):
            row_item = exemplars[row_class]
            for j, column_class in enumerate(column_classes):
                pair = (row_class, column_class)
                value = memo.get(pair)
                if value is None:
                    value = content_similarity(row_item, exemplars[column_class])
                    memo[pair] = value
                block[i, j] = value
        return block

    def _content_maps(self, row_classes, column_classes):
        """Content block plus full-size local-id remap arrays.

        The single construction of the memoised content lookup shared by
        every batch kernel (including subclasses such as the torch
        backend, whose parity contract depends on gathering the *same*
        floats): the dense block for the given class-id sets, and two
        ``len(_content_exemplars)``-sized arrays mapping a global content
        class id to its row/column position in that block.
        """
        np = self._np
        content = self._content_block(row_classes.tolist(), column_classes.tolist())
        row_remap = np.zeros(len(self._content_exemplars), dtype=np.intp)
        row_remap[row_classes] = np.arange(len(row_classes), dtype=np.intp)
        column_remap = np.zeros(len(self._content_exemplars), dtype=np.intp)
        column_remap[column_classes] = np.arange(
            len(column_classes), dtype=np.intp
        )
        return content, row_remap, column_remap

    def _cosine_block(self, classes):
        """Dense TCU-cosine block for the given content-class ids.

        ``rank_C`` sums :meth:`~repro.text.vector.SparseVector.cosine`
        values, which depend only on the vectors' ordered term/weight
        sequences -- exactly the information the content-class key pins --
        so one cosine per ordered class pair reproduces every per-item
        cosine of the reference loop bit-for-bit.
        """
        if not self._hydrated:
            self._ensure_hydrated()
        np = self._np
        memo = self._cosine_memo
        exemplars = self._content_exemplars
        block = np.empty((len(classes), len(classes)), dtype=np.float64)
        for i, row_class in enumerate(classes):
            row_vector = exemplars[row_class].vector
            for j, column_class in enumerate(classes):
                pair = (row_class, column_class)
                value = memo.get(pair)
                if value is None:
                    value = row_vector.cosine(exemplars[column_class].vector)
                    memo[pair] = value
                block[i, j] = value
        return block

    # ------------------------------------------------------------------ #
    # Batch kernel (tiled)
    # ------------------------------------------------------------------ #
    @property
    def effective_block_items(self) -> Optional[int]:
        """Resolved tile budget: ``None`` means unbounded (single tile).

        The configured :attr:`block_items` with ``None`` resolved to the
        backend default and the explicit ``0`` (untiled) selection resolved
        to an unbounded budget.
        """
        block = (
            self.DEFAULT_BLOCK_ITEMS
            if self.block_items is None
            else self.block_items
        )
        return None if block == 0 else block

    @staticmethod
    def _tile_spans(lengths: Sequence[int], budget: Optional[int]):
        """Contiguous ``(start, stop)`` spans with item totals within *budget*.

        Transactions are atomic -- a span always holds at least one, so a
        single transaction larger than the budget forms its own span --
        and consecutive, so every tiled reduction visits rows and columns
        in exactly the input order.  ``budget=None`` returns one span
        covering everything (the unbounded single-tile path).
        """
        count = len(lengths)
        if not count:
            return []
        if budget is None:
            return [(0, count)]
        spans = []
        start = 0
        total = 0
        for index, length in enumerate(lengths):
            if index > start and total + length > budget:
                spans.append((start, index))
                start = index
                total = 0
            total += length
        spans.append((start, count))
        return spans

    def _pair_similarities(self, rows: Sequence[Transaction], columns: Sequence[Transaction]):
        """Return the (len(rows), len(columns)) array of sim^gamma_J values.

        Evaluated in ``(row_tile x column_tile)`` blocks: contiguous
        groups of transactions whose item totals stay within
        :attr:`effective_block_items` per side.  Several column
        transactions are fused into one set of segment-wise reductions
        per tile (``np.maximum.reduceat`` / ``np.logical_or.reduceat``
        over the per-transaction item segments), which generalises the
        historical one-column-at-a-time pass exactly: max/any reductions
        are order-independent and the gathered floats are identical, so
        every tile size produces the same bits.
        """
        np = self._np
        f = self.config.f
        gamma = self.config.gamma
        sims = np.zeros((len(rows), len(columns)), dtype=np.float64)

        compiled_rows = [self._compile(row) for row in rows]
        compiled_columns = [self._compile(column) for column in columns]
        row_positions = [i for i, c in enumerate(compiled_rows) if c.length]
        column_positions = [j for j, c in enumerate(compiled_columns) if c.length]
        if not row_positions or not column_positions:
            return sims

        tp_matrix = self._ensure_tp_matrix()
        active_rows = [compiled_rows[i] for i in row_positions]
        active_columns = [compiled_columns[j] for j in column_positions]

        # --- content lookup block (skipped entirely when f == 1) ----------- #
        # built once for the whole call: its size is bounded by the number
        # of distinct content classes (schema-scale), not by the tiles
        if f != 1.0:
            row_classes = np.unique(
                np.concatenate([c.content_ids for c in active_rows])
            )
            column_classes = np.unique(
                np.concatenate([c.content_ids for c in active_columns])
            )
            content, row_remap, column_remap = self._content_maps(
                row_classes, column_classes
            )

        budget = self.effective_block_items
        row_spans = self._tile_spans([c.length for c in active_rows], budget)
        column_spans = self._tile_spans(
            [c.length for c in active_columns], budget
        )

        # per-column-tile data is row-independent: build it once instead of
        # once per (row tile x column tile) pair
        column_tiles = []
        for column_start, column_stop in column_spans:
            tile_columns = active_columns[column_start:column_stop]
            column_lengths = np.array(
                [c.length for c in tile_columns], dtype=np.intp
            )
            column_offsets = np.zeros(len(tile_columns), dtype=np.intp)
            np.cumsum(column_lengths[:-1], out=column_offsets[1:])
            column_tp = (
                np.concatenate([c.tag_path_ids for c in tile_columns])
                if f != 0.0
                else None
            )
            column_ck = (
                column_remap[
                    np.concatenate([c.content_ids for c in tile_columns])
                ]
                if f != 1.0
                else None
            )
            column_tiles.append(
                (
                    column_start,
                    tile_columns,
                    column_lengths,
                    column_offsets,
                    column_tp,
                    column_ck,
                )
            )

        for row_start, row_stop in row_spans:
            tile_rows = active_rows[row_start:row_stop]
            lengths = np.array([c.length for c in tile_rows], dtype=np.intp)
            offsets = np.zeros(len(tile_rows), dtype=np.intp)
            np.cumsum(lengths[:-1], out=offsets[1:])
            if f != 0.0:
                row_tp = np.concatenate([c.tag_path_ids for c in tile_rows])
            if f != 1.0:
                row_ck = row_remap[
                    np.concatenate([c.content_ids for c in tile_rows])
                ]
            for (
                column_start,
                tile_columns,
                column_lengths,
                column_offsets,
                column_tp,
                column_ck,
            ) in column_tiles:
                # item-similarity block: same arithmetic as the scalar
                # Eq. 1, including the f == 0 / f == 1 short-circuits.
                if f != 0.0:
                    structural = tp_matrix[row_tp[:, None], column_tp[None, :]]
                if f != 1.0:
                    contentpart = content[row_ck[:, None], column_ck[None, :]]
                if f == 1.0:
                    block = structural
                elif f == 0.0:
                    block = contentpart
                else:
                    block = f * structural + (1.0 - f) * contentpart
                if block.size > self.peak_scratch_entries:
                    self.peak_scratch_entries = block.size

                # direction tr -> rep: per representative item (column),
                # the best row item(s) of each row-transaction segment; a
                # row item is matched for a column transaction when any of
                # that transaction's qualifying columns elects it.
                column_max = np.maximum.reduceat(block, offsets, axis=0)
                qualifying = column_max >= gamma
                matched_row_items = np.logical_or.reduceat(
                    (block == np.repeat(column_max, lengths, axis=0))
                    & np.repeat(qualifying, lengths, axis=0),
                    column_offsets,
                    axis=1,
                )
                # direction rep -> tr: per row item, its best item(s)
                # within each column-transaction segment; a segment's
                # column is matched when any qualifying row attains its
                # segment maximum there.
                row_max = np.maximum.reduceat(block, column_offsets, axis=1)
                row_qualifies = row_max >= gamma
                matched_column_items = np.logical_or.reduceat(
                    (block == np.repeat(row_max, column_lengths, axis=1))
                    & np.repeat(row_qualifies, column_lengths, axis=1),
                    offsets,
                    axis=0,
                )

                for row_index, compiled_row in enumerate(tile_rows):
                    row_slice = slice(
                        offsets[row_index],
                        offsets[row_index] + lengths[row_index],
                    )
                    row_uids = compiled_row.uids
                    row_uid_set = compiled_row.uid_set
                    sims_row = row_positions[row_start + row_index]
                    for column_index, compiled_column in enumerate(tile_columns):
                        column_slice = slice(
                            column_offsets[column_index],
                            column_offsets[column_index]
                            + column_lengths[column_index],
                        )
                        matched = set(
                            row_uids[
                                matched_row_items[row_slice, column_index]
                            ].tolist()
                        )
                        matched.update(
                            compiled_column.uids[
                                matched_column_items[row_index, column_slice]
                            ].tolist()
                        )
                        union = len(row_uid_set | compiled_column.uid_set)
                        if union:
                            sims[
                                sims_row,
                                column_positions[column_start + column_index],
                            ] = len(matched) / union
        return sims

    # ------------------------------------------------------------------ #
    # Scalar API (parity with the reference backend)
    # ------------------------------------------------------------------ #
    def item_similarity(self, item_a: TreeTupleItem, item_b: TreeTupleItem) -> float:
        """Combined item similarity (Eq. 1) from the shared tag-path cache
        and the memoised per-content-class block; bit-exact with the scalar
        reference (same IEEE-754 operation order, same short-circuits)."""
        structural = self.cache.item_similarity(item_a, item_b)
        f = self.config.f
        if f == 1.0:
            return structural
        pair = (self._content_id(item_a), self._content_id(item_b))
        value = self._content_memo.get(pair)
        if value is None:
            value = content_similarity(item_a, item_b)
            self._content_memo[pair] = value
        if f == 0.0:
            return value
        return f * structural + (1.0 - f) * value

    def gamma_shared_items(
        self, tr1: Transaction, tr2: Transaction
    ) -> Set[TreeTupleItem]:
        """Gamma-shared item set (Eq. 2) as two masked max-reduction passes
        over the compiled item-similarity block; the returned set equals the
        reference loop's for every input."""
        if tr1.is_empty() or tr2.is_empty():
            return set()
        np = self._np
        f = self.config.f
        gamma = self.config.gamma
        first = self._compile(tr1)
        second = self._compile(tr2)
        tp_matrix = self._ensure_tp_matrix()
        if f == 1.0:
            block = tp_matrix[first.tag_path_ids[:, None], second.tag_path_ids[None, :]]
        else:
            row_classes = np.unique(first.content_ids)
            column_classes = np.unique(second.content_ids)
            content, row_remap, column_remap = self._content_maps(
                row_classes, column_classes
            )
            contentpart = content[
                row_remap[first.content_ids][:, None],
                column_remap[second.content_ids][None, :],
            ]
            if f == 0.0:
                block = contentpart
            else:
                structural = tp_matrix[
                    first.tag_path_ids[:, None], second.tag_path_ids[None, :]
                ]
                block = f * structural + (1.0 - f) * contentpart

        column_max = block.max(axis=0)
        matched_rows = ((block == column_max[None, :]) & (column_max >= gamma)[None, :]).any(axis=1)
        row_max = block.max(axis=1)
        matched_columns = ((block == row_max[:, None]) & (row_max >= gamma)[:, None]).any(axis=0)
        matched: Set[TreeTupleItem] = {
            item for item, flag in zip(tr1.items, matched_rows.tolist()) if flag
        }
        matched.update(
            item for item, flag in zip(tr2.items, matched_columns.tolist()) if flag
        )
        return matched

    def transaction_similarity(self, tr1: Transaction, tr2: Transaction) -> float:
        """Transaction similarity ``sim^gamma_J`` (Eq. 4) as a 1x1 batch;
        the integer-ratio result matches the scalar loop exactly."""
        return float(self._pair_similarities([tr1], [tr2])[0, 0])

    def pairwise_transaction_similarity(
        self, rows: Sequence[Transaction], columns: Sequence[Transaction]
    ) -> List[List[float]]:
        """Dense ``sim^gamma_J`` block evaluated by the vectorized batch
        kernel, returned as nested lists in row/column input order."""
        return self._pair_similarities(rows, columns).tolist()

    def nearest_representative(
        self, transaction: Transaction, representatives: Sequence[Transaction]
    ) -> Tuple[int, float]:
        """(index, similarity) of the best representative; ``np.argmax``
        keeps the first maximum, reproducing the reference lowest-index
        tie-break.  An empty representative list returns ``(-1, 0.0)``."""
        if not representatives:
            return -1, 0.0
        row = self._pair_similarities([transaction], representatives)[0]
        index = int(self._np.argmax(row))
        return index, float(row[index])

    def assign_all(
        self,
        transactions: Sequence[Transaction],
        representatives: Sequence[Transaction],
    ) -> List[Tuple[int, float]]:
        """Bulk assignment: the whole corpus-vs-representatives block in one
        batched kernel call, one ``(index, similarity)`` pair per
        transaction in input order with the lowest-index tie-break."""
        if not representatives:
            return [(-1, 0.0) for _ in transactions]
        np = self._np
        sims = self._pair_similarities(transactions, representatives)
        # np.argmax keeps the first maximum, matching the reference loop's
        # strictly-greater update (ties break to the lowest index).
        best = np.argmax(sims, axis=1)
        values = sims[np.arange(sims.shape[0]), best]
        return [(int(index), float(value)) for index, value in zip(best, values)]

    # ------------------------------------------------------------------ #
    # Representative refinement (batch scoring and ranking)
    # ------------------------------------------------------------------ #
    def score_candidates(
        self, cluster: Sequence[Transaction], candidates: Sequence[Transaction]
    ) -> List[float]:
        """Per-candidate cohesion scores from tiled batched similarity
        blocks, accumulated row by row so every float matches the reference
        member-order sum bit-for-bit.

        The cluster rows are processed in contiguous member-order tiles
        (item totals within :attr:`effective_block_items`), so only one
        ``(row_tile x candidates)`` similarity block is alive at a time --
        peak memory stays bounded for arbitrarily large clusters -- while
        the row-major accumulation order (hence every float) is identical
        to the single-block path.
        """
        candidates = list(candidates)
        if not candidates:
            return []
        cluster = list(cluster)
        np = self._np
        totals = np.zeros(len(candidates), dtype=np.float64)
        if cluster:
            spans = self._tile_spans(
                [len(member.items) for member in cluster],
                self.effective_block_items,
            )
            for start, stop in spans:
                sims = self._pair_similarities(cluster[start:stop], candidates)
                # accumulate row by row: per candidate the same
                # left-to-right member-order sum as the reference loop
                # (tiles are contiguous and in order), hence the same float
                for row in sims:
                    totals = totals + row
        return [float(total) for total in totals]

    def rank_items_batch(self, items: Sequence[TreeTupleItem]) -> List[float]:
        """Blended structural/content ranks of the whole pool: structural
        sums over the compiled tag-path matrix, content sums over the
        memoised per-class cosine block.

        Both gathers are evaluated in ``(row_tile x column_tile)`` blocks
        of at most :attr:`effective_block_items` items per side, so peak
        scratch stays bounded for arbitrarily large pools.  The structural
        sums are integer-valued (path multiplicities), hence exact under
        any tiling; the content accumulation walks the column tiles left
        to right and the columns within each tile in order, replaying the
        reference sequential sum so every rank is the same float.
        """
        items = list(items)
        n = len(items)
        if not n:
            return []
        np = self._np
        f = self.config.f
        gamma = self.config.gamma
        budget = self.effective_block_items
        item_spans = self._tile_spans([1] * n, budget)

        # --- structural ranking (per distinct complete path) --------------- #
        if f != 0.0:
            path_counts: Dict[object, int] = {}
            for item in items:
                path_counts[item.path] = path_counts.get(item.path, 0) + 1
            distinct_paths = list(path_counts)
            item_tp = np.array(
                [self._tag_path_id(item.tag_path) for item in items], dtype=np.intp
            )
            pool_tp = np.array(
                [self._tag_path_id(path.tag_path()) for path in distinct_paths],
                dtype=np.intp,
            )
            tp_matrix = self._ensure_tp_matrix()
            counts = np.array(
                [path_counts[path] for path in distinct_paths], dtype=np.float64
            )
            path_spans = self._tile_spans([1] * len(distinct_paths), budget)
            rank_s = np.zeros(n, dtype=np.float64)
            for row_start, row_stop in item_spans:
                partial = np.zeros(row_stop - row_start, dtype=np.float64)
                for column_start, column_stop in path_spans:
                    structural = tp_matrix[
                        item_tp[row_start:row_stop, None],
                        pool_tp[None, column_start:column_stop],
                    ]
                    if structural.size > self.peak_scratch_entries:
                        self.peak_scratch_entries = structural.size
                    # the masked sums are integer-valued, so they are exact
                    # in any summation order (and under any tiling) and
                    # match the scalar accumulation bit-for-bit
                    partial = partial + np.where(
                        structural >= gamma,
                        counts[None, column_start:column_stop],
                        0.0,
                    ).sum(axis=1)
                rank_s[row_start:row_stop] = partial / len(distinct_paths)
        else:
            rank_s = np.zeros(n, dtype=np.float64)

        # --- content ranking (memoised per-class cosine block) ------------- #
        if f != 1.0:
            class_ids = np.array([self._content_id(item) for item in items], dtype=np.intp)
            present = np.unique(class_ids)
            block = self._cosine_block(present.tolist())
            remap = np.zeros(len(self._content_exemplars), dtype=np.intp)
            remap[present] = np.arange(len(present), dtype=np.intp)
            local = remap[class_ids]
            rank_c = np.zeros(n, dtype=np.float64)
            for row_start, row_stop in item_spans:
                partial = np.zeros(row_stop - row_start, dtype=np.float64)
                for column_start, column_stop in item_spans:
                    cosines = block[
                        local[row_start:row_stop, None],
                        local[None, column_start:column_stop],
                    ]
                    if cosines.size > self.peak_scratch_entries:
                        self.peak_scratch_entries = cosines.size
                    # accumulate column by column so every rank is the same
                    # sequential left-to-right sum as the reference loop
                    # (tiles walk the columns in order)
                    for j in range(cosines.shape[1]):
                        partial = partial + cosines[:, j]
                rank_c[row_start:row_stop] = partial
            empty = np.array([not item.vector for item in items], dtype=bool)
            rank_c[empty] = 0.0
        else:
            # the reference blend multiplies rank_C by (1 - f) == 0.0, so any
            # finite value yields the same float; skip the cosine work
            rank_c = np.zeros(n, dtype=np.float64)

        ranks = f * rank_s + (1.0 - f) * rank_c
        return [float(rank) for rank in ranks]


# --------------------------------------------------------------------------- #
# Sharded multiprocessing backend
# --------------------------------------------------------------------------- #
class ShardedBackend:
    """Multiprocessing backend sharding ``assign_all`` row blocks.

    Every scalar and batch entry point is served by an in-process *inner*
    backend (the vectorized numpy engine when importable, the python
    reference otherwise); only the corpus-scale ``assign_all`` call is
    parallelised.  The transaction rows are split into one contiguous block
    per worker, each block is dispatched through a
    :class:`~repro.network.mpengine.MultiprocessingExecutor` to
    :func:`~repro.network.mpengine.assign_shard`, which evaluates it on the
    worker process' cached engine
    (:func:`~repro.network.mpengine.process_engine`), and the per-block
    results are concatenated in block order.  The merge is therefore
    deterministic, and because every shard is evaluated by a bit-exact inner
    backend against the full representative set, the sharded assignment is
    identical to the serial one.

    The worker count and inner backend are selected through backend-name
    options: ``"sharded"`` uses one worker per CPU, ``"sharded:4"`` uses 4
    workers and ``"sharded:4:python"`` additionally pins the inner backend.
    The inner spec may itself carry options (``"sharded:4:numpy:block=64"``),
    which shard workers inherit through the shard payload's backend string
    -- this is how the tile configuration reaches every worker process.
    Small row counts (below :data:`MIN_SHARD_ROWS`), a single worker, or any
    dispatch failure (unpicklable payloads, pool spawn failures -- e.g. when
    already inside a daemonic pool worker) fall back to the in-process inner
    backend, so ``sharded`` is always safe to select.
    """

    name = "sharded"

    #: Below this many assignment rows the in-process inner backend is used
    #: directly (process dispatch would dominate the actual work).
    MIN_SHARD_ROWS = 8

    def __init__(self, engine: "SimilarityEngine", options: Optional[str] = None) -> None:
        self.engine = engine
        self.workers, self.inner_name = self._parse_options(options)
        self._inner = create_backend(self.inner_name, engine)
        self._executor = None
        #: Store handle shared with shard workers (None without a store).
        self.attached_store = None

    @property
    def corpus_compile_count(self) -> int:
        """Corpus transactions actually compiled by the inner backend."""
        return getattr(self._inner, "corpus_compile_count", 0)

    def attach_store(self, store, transactions=None) -> bool:
        """Keep the store handle for shard dispatch and attach it to the
        in-process inner backend when that backend supports compiled
        corpora; workers attach their own handle on first shard touch."""
        self.attached_store = store
        inner_attach = getattr(self._inner, "attach_store", None)
        if inner_attach is not None:
            return bool(inner_attach(store, transactions))
        return False

    @staticmethod
    def _parse_options(options: Optional[str]) -> Tuple[int, str]:
        """Parse ``"[workers][:inner-spec]"`` sharded options.

        The inner spec may carry its own options (``"numpy:block=64"``);
        it is validated through :func:`validate_backend_spec`, so unknown
        inner names and malformed inner options raise the same errors as
        a directly selected backend.  Nested sharding and torch inner
        backends are rejected with dedicated messages.
        """
        workers: Optional[int] = None
        inner = "numpy" if _numpy_importable() else "python"
        explicit_inner = False
        if options:
            parts = options.split(":")
            if parts[0]:
                try:
                    workers = int(parts[0])
                except ValueError:
                    raise ValueError(
                        f"invalid sharded worker count: {parts[0]!r}"
                    ) from None
                if workers < 1:
                    raise ValueError(
                        f"sharded worker count must be positive, got {workers}"
                    )
            inner_spec = ":".join(parts[1:])
            if inner_spec:
                inner = inner_spec
                explicit_inner = True
                if inner.split(":")[0] == "sharded":
                    raise ValueError("the sharded backend cannot shard itself")
        if inner.split(":")[0] == "torch":
            raise ValueError(
                "the torch backend cannot run inside sharded worker "
                "processes (tensor runtimes must not be re-initialised in "
                "forked/spawned shard workers); select backend='torch' "
                "directly instead of sharding it"
            )
        if explicit_inner:
            # single source of truth: the inner spec fails with exactly the
            # errors a direct selection of that backend would raise
            inner = validate_backend_spec(inner)
        if workers is None:
            import multiprocessing

            workers = multiprocessing.cpu_count()
        return workers, inner

    # ------------------------------------------------------------------ #
    # Executor lifecycle
    # ------------------------------------------------------------------ #
    def _ensure_executor(self):
        if self._executor is None:
            from repro.network.mpengine import shard_executor

            # drawn from the process-wide registry shared with cluster
            # refinement, so assignment and refinement shards of the same
            # worker count run in one pool (one engine cache per worker)
            self._executor = shard_executor(self.workers)
        return self._executor

    def close(self) -> None:
        """Release the worker pool (recreated lazily on the next shard).

        The executor comes from the shared registry, so closing stops its
        worker processes for every shard dispatcher; the pool respawns
        lazily on whoever dispatches next.
        """
        if self._executor is not None:
            self._executor.close()
            self._executor = None

    def __enter__(self) -> "ShardedBackend":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    def __del__(self) -> None:  # pragma: no cover - defensive cleanup
        try:
            self.close()
        except Exception:
            pass

    # ------------------------------------------------------------------ #
    # Delegated entry points (in-process inner backend)
    # ------------------------------------------------------------------ #
    def item_similarity(self, item_a: TreeTupleItem, item_b: TreeTupleItem) -> float:
        """Item similarity (Eq. 1), served by the in-process inner backend."""
        return self._inner.item_similarity(item_a, item_b)

    def gamma_shared_items(
        self, tr1: Transaction, tr2: Transaction
    ) -> Set[TreeTupleItem]:
        """Gamma-shared item set (Eq. 2), served by the inner backend."""
        return self._inner.gamma_shared_items(tr1, tr2)

    def transaction_similarity(self, tr1: Transaction, tr2: Transaction) -> float:
        """Transaction similarity (Eq. 4), served by the inner backend."""
        return self._inner.transaction_similarity(tr1, tr2)

    def pairwise_transaction_similarity(
        self, rows: Sequence[Transaction], columns: Sequence[Transaction]
    ) -> List[List[float]]:
        """Similarity block, served in-process by the inner backend."""
        return self._inner.pairwise_transaction_similarity(rows, columns)

    def nearest_representative(
        self, transaction: Transaction, representatives: Sequence[Transaction]
    ) -> Tuple[int, float]:
        """Single-row nearest representative, served by the inner backend."""
        return self._inner.nearest_representative(transaction, representatives)

    def compile_corpus(self, transactions: Sequence[Transaction]) -> int:
        """Compile the corpus into the *inner* backend's cache (worker
        processes compile their own copies lazily via the per-process
        engine cache)."""
        return self._inner.compile_corpus(transactions)

    def extend_corpus(
        self, transactions: Sequence[Transaction], *, pin: bool = False
    ) -> int:
        """Delta-compile into the *inner* backend (worker processes pick
        up appended blocks through their per-process store handles)."""
        return self._inner.extend_corpus(transactions, pin=pin)

    def score_candidates(
        self, cluster: Sequence[Transaction], candidates: Sequence[Transaction]
    ) -> List[float]:
        """Refinement candidate scores, served by the inner backend
        (refinement parallelism is handled one level up by
        :func:`repro.network.mpengine.refine_clusters`, never by nesting
        pools inside a backend call)."""
        return self._inner.score_candidates(cluster, candidates)

    def rank_items_batch(self, items: Sequence[TreeTupleItem]) -> List[float]:
        """Blended item ranks, served by the inner backend."""
        return self._inner.rank_items_batch(items)

    # ------------------------------------------------------------------ #
    # Sharded assignment
    # ------------------------------------------------------------------ #
    def _row_blocks(self, transactions: List[Transaction]) -> List[List[Transaction]]:
        """Split rows into at most ``workers`` contiguous non-empty blocks."""
        total = len(transactions)
        shards = min(self.workers, total)
        size, remainder = divmod(total, shards)
        blocks: List[List[Transaction]] = []
        start = 0
        for index in range(shards):
            stop = start + size + (1 if index < remainder else 0)
            blocks.append(transactions[start:stop])
            start = stop
        return blocks

    def _store_rows(
        self, transactions: Sequence[Transaction]
    ) -> Optional[List[int]]:
        """Store row ids for *transactions*, or None when any row (or the
        store's row index itself) cannot be resolved -- in which case the
        dispatch falls back to shipping the transactions by pickle."""
        store = self.attached_store
        if store is None:
            return None
        try:
            row_index = store.row_index()
        except Exception:
            return None
        rows: List[int] = []
        for transaction in transactions:
            row = row_index.get(transaction)
            if row is None:
                return None
            rows.append(row)
        return rows

    def assign_all(
        self,
        transactions: Sequence[Transaction],
        representatives: Sequence[Transaction],
    ) -> List[Tuple[int, float]]:
        """Sharded bulk assignment: contiguous row blocks dispatched to
        worker processes and concatenated in block order (deterministic,
        bit-exact with the serial inner backend); small inputs, one worker
        or dispatch failures fall back to the in-process inner backend.

        With an attached corpus store the shards carry the store directory
        plus row-id spans instead of pickled ``Transaction`` rows, and the
        representative set travels once per dispatch as a round payload
        instead of once per shard -- workers attach the store on first
        touch and reuse it across rounds.
        """
        transactions = list(transactions)
        if not representatives:
            return [(-1, 0.0) for _ in transactions]
        if self.workers <= 1 or len(transactions) < self.MIN_SHARD_ROWS:
            return self._inner.assign_all(transactions, representatives)
        from repro.network.mpengine import (
            AssignmentShard,
            assign_shard,
            discard_round_payload,
            publish_round_payload,
        )

        executor = self._ensure_executor()
        if not executor.can_dispatch():
            # the executor would silently run shards in-process on cold
            # duplicate engines (e.g. stdin-launched parent); the warm
            # inner backend is strictly better
            return self._inner.assign_all(transactions, representatives)
        representatives = list(representatives)
        blocks = self._row_blocks(transactions)
        store_rows = self._store_rows(transactions)
        store_dir = (
            str(self.attached_store.directory) if store_rows is not None else None
        )
        # the representative set is identical for every shard of a round:
        # publish it once and let shards carry a tiny content-addressed
        # reference (falls back to inlining when the payload cannot be
        # written, e.g. read-only temp dirs)
        payload_ref = publish_round_payload(representatives)
        try:
            shards = []
            start = 0
            for block in blocks:
                stop = start + len(block)
                shards.append(
                    AssignmentShard(
                        transactions=None if store_rows is not None else block,
                        representatives=(
                            None if payload_ref is not None else representatives
                        ),
                        similarity=self.engine.config,
                        backend=self.inner_name,
                        store_dir=store_dir,
                        store_rows=(
                            store_rows[start:stop]
                            if store_rows is not None
                            else None
                        ),
                        representatives_ref=payload_ref,
                    )
                )
                start = stop
            try:
                # strict dispatch: pool/worker failures raise and land on
                # the warm inner backend instead of cold in-process
                # duplicates
                results = executor.dispatch(assign_shard, shards)
            except Exception:
                return self._inner.assign_all(transactions, representatives)
        finally:
            discard_round_payload(payload_ref)
        return [pair for block_result in results for pair in block_result]


# --------------------------------------------------------------------------- #
# Registry
# --------------------------------------------------------------------------- #
_REGISTRY: Dict[str, Callable[..., SimilarityBackend]] = {}


def register_backend(name: str, factory: Callable[..., SimilarityBackend]) -> None:
    """Register a backend *factory* under *name* (case-insensitive).

    A factory is called as ``factory(engine)``; factories that support
    backend-name options (``"name:options"``) must additionally accept the
    option string as a second positional argument.
    """
    _REGISTRY[name.lower()] = factory


def create_backend(name: Optional[str], engine: "SimilarityEngine") -> SimilarityBackend:
    """Instantiate the backend registered under *name* for *engine*.

    ``None`` selects :data:`DEFAULT_BACKEND`.  A ``"name:options"`` spec
    passes the option string to the factory (e.g. ``"sharded:4"`` for four
    worker processes).  Unknown names raise a ``ValueError`` listing the
    registered alternatives.
    """
    key = (name or DEFAULT_BACKEND).lower()
    base, _, options = key.partition(":")
    factory = _REGISTRY.get(base)
    if factory is None:
        raise ValueError(_unknown_backend_message(name))
    if options:
        if not _factory_accepts_options(factory):
            raise ValueError(
                f"similarity backend {base!r} accepts no options (got {options!r})"
            )
        return factory(engine, options)
    return factory(engine)


def _factory_accepts_options(factory: Callable[..., SimilarityBackend]) -> bool:
    """True when *factory* can be called with a second (options) argument.

    Decided from the signature rather than by catching ``TypeError`` around
    the call, so a genuine ``TypeError`` raised *inside* an option-accepting
    factory keeps its real traceback instead of being misreported as
    "accepts no options".
    """
    import inspect

    try:
        signature = inspect.signature(factory)
    except (TypeError, ValueError):  # pragma: no cover - exotic callables
        return True
    positional = [
        parameter
        for parameter in signature.parameters.values()
        if parameter.kind
        in (parameter.POSITIONAL_ONLY, parameter.POSITIONAL_OR_KEYWORD)
    ]
    has_var_positional = any(
        parameter.kind is parameter.VAR_POSITIONAL
        for parameter in signature.parameters.values()
    )
    return has_var_positional or len(positional) >= 2


def registered_backends() -> Tuple[str, ...]:
    """Return every registered backend name, sorted."""
    return tuple(sorted(_REGISTRY))


#: Importability probes for backends with optional dependencies; backends
#: absent from this mapping are always usable.
_AVAILABILITY_PROBES: Dict[str, Callable[[], bool]] = {
    "numpy": _numpy_importable,
    "torch": _torch_importable,
}


def available_backends() -> Tuple[str, ...]:
    """Return the registered backends usable in this environment.

    ``sharded`` is always usable: it degrades to its in-process inner
    backend when worker pools cannot be spawned.  Backends with optional
    dependencies (``numpy``, ``torch``) are listed only when their
    dependency imports; selecting an excluded one still raises an
    actionable :class:`BackendUnavailableError` (see
    :func:`validate_backend_spec`).
    """
    names = []
    for name in registered_backends():
        probe = _AVAILABILITY_PROBES.get(name)
        if probe is not None and not probe():
            continue
        names.append(name)
    return tuple(names)


def validate_backend_spec(spec: Optional[str]) -> str:
    """Validate a ``"name[:options]"`` backend spec without an engine.

    The config-resolution-time gate used by
    :class:`~repro.core.config.ClusteringConfig` and the CLI so a broken
    spec fails where the user wrote it, not deep inside a fit:

    * unknown base names raise ``ValueError`` listing the registered
      alternatives (same message as :func:`create_backend` -- the single
      source of truth the CLI and ``ClusteringConfig`` both surface);
    * options passed to an option-less backend raise ``ValueError``;
    * malformed option values (``block=`` budgets, worker counts, torch
      devices) raise ``ValueError`` naming the offending part;
    * backends whose optional dependency is missing -- or whose requested
      device is unusable (``torch:cuda`` on a CPU-only build) -- raise
      :class:`BackendUnavailableError` with an actionable message;
    * ``sharded`` options are parsed eagerly (worker counts, inner-backend
      rules incl. recursive inner-spec validation, the no-nested-torch
      rule).

    Returns the normalised (lower-cased) spec.
    """
    key = (spec or DEFAULT_BACKEND).lower()
    base, _, options = key.partition(":")
    factory = _REGISTRY.get(base)
    if factory is None:
        raise ValueError(_unknown_backend_message(spec))
    if options and not _factory_accepts_options(factory):
        raise ValueError(
            f"similarity backend {base!r} accepts no options (got {options!r})"
        )
    if base == "numpy":
        _load_numpy()
        rest, _ = split_block_option(options or None, key)
        if rest:
            raise ValueError(
                f"invalid numpy backend options {options!r} "
                "(expected 'numpy[:block=N]')"
            )
    elif base == "torch":
        from repro.similarity.torch_backend import validate_torch_spec

        validate_torch_spec(options or None)
    elif base == "sharded":
        ShardedBackend._parse_options(options or None)
    return key


def _create_torch_backend(engine: "SimilarityEngine", options: Optional[str] = None):
    """Lazy factory for the optional torch backend.

    The module (and torch itself) is imported only when the backend is
    actually selected, so the core install stays numpy-only; a missing
    torch raises :class:`BackendUnavailableError` with install guidance.
    """
    from repro.similarity.torch_backend import TorchBackend

    return TorchBackend(engine, options)


register_backend("python", PythonBackend)
register_backend("numpy", NumpyBackend)
register_backend("sharded", ShardedBackend)
register_backend("torch", _create_torch_backend)
