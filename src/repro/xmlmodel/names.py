"""Label alphabets used by the XML tree model.

The paper (Sec. 3.1) defines an XML tree over the alphabet
``Sigma = Tag ∪ Att ∪ {S}`` where

* ``Tag`` is the alphabet of element tag names,
* ``Att`` is the alphabet of attribute names (prefixed here with ``@`` as is
  customary in XPath-like notations), and
* ``S`` is the distinguished symbol denoting ``#PCDATA`` text content.

This module provides the :data:`PCDATA` sentinel, validation helpers for tag
and attribute names, and the :class:`Label` value object used to tag nodes.
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from enum import Enum

from repro.xmlmodel.errors import XMLTreeError

#: The distinguished symbol ``S`` used to label text (``#PCDATA``) leaves.
PCDATA = "S"

#: Prefix that distinguishes attribute labels from tag labels.
ATTRIBUTE_PREFIX = "@"

# XML 1.0 (simplified): names start with a letter, underscore or colon and
# continue with letters, digits, hyphens, underscores, dots or colons.
_NAME_RE = re.compile(r"^[A-Za-z_:][A-Za-z0-9_.:\-]*$")


class LabelKind(Enum):
    """The three kinds of labels an XML tree node may carry."""

    TAG = "tag"
    ATTRIBUTE = "attribute"
    TEXT = "text"


def is_valid_name(name: str) -> bool:
    """Return ``True`` if *name* is a syntactically valid XML name."""
    return bool(_NAME_RE.match(name))


def attribute_label(name: str) -> str:
    """Return the label used for an attribute leaf (``@name``)."""
    if not is_valid_name(name):
        raise XMLTreeError(f"invalid attribute name: {name!r}")
    return ATTRIBUTE_PREFIX + name


def is_attribute_label(label: str) -> bool:
    """Return ``True`` if *label* denotes an attribute (starts with ``@``)."""
    return label.startswith(ATTRIBUTE_PREFIX)


def is_text_label(label: str) -> bool:
    """Return ``True`` if *label* is the ``#PCDATA`` sentinel ``S``."""
    return label == PCDATA


def is_tag_label(label: str) -> bool:
    """Return ``True`` if *label* is an element tag name."""
    return not is_attribute_label(label) and not is_text_label(label)


def label_kind(label: str) -> LabelKind:
    """Classify *label* into one of the three :class:`LabelKind` values."""
    if is_text_label(label):
        return LabelKind.TEXT
    if is_attribute_label(label):
        return LabelKind.ATTRIBUTE
    return LabelKind.TAG


def validate_tag(name: str) -> str:
    """Validate an element tag name and return it unchanged.

    Raises
    ------
    XMLTreeError
        If *name* is not a valid XML name or collides with the ``S`` sentinel.
    """
    if name == PCDATA:
        # 'S' itself is permitted as a tag in real documents; the model keeps
        # them distinguishable because text leaves are leaves while tags are
        # internal nodes, but we forbid it to keep the alphabets disjoint as
        # required by the formal definition.
        raise XMLTreeError(
            "the tag name 'S' is reserved for #PCDATA leaves by the model"
        )
    if not is_valid_name(name):
        raise XMLTreeError(f"invalid tag name: {name!r}")
    return name


def strip_attribute_prefix(label: str) -> str:
    """Return the bare attribute name for an ``@name`` label."""
    if not is_attribute_label(label):
        raise XMLTreeError(f"not an attribute label: {label!r}")
    return label[len(ATTRIBUTE_PREFIX):]


@dataclass(frozen=True)
class Label:
    """Immutable value object pairing a label string with its kind.

    Using a value object (rather than bare strings) in higher layers makes the
    structural-similarity code self documenting; the tree itself stores plain
    strings for compactness.
    """

    value: str
    kind: LabelKind

    @staticmethod
    def tag(name: str) -> "Label":
        return Label(validate_tag(name), LabelKind.TAG)

    @staticmethod
    def attribute(name: str) -> "Label":
        return Label(attribute_label(name), LabelKind.ATTRIBUTE)

    @staticmethod
    def text() -> "Label":
        return Label(PCDATA, LabelKind.TEXT)

    @staticmethod
    def of(label: str) -> "Label":
        """Build a :class:`Label` from a raw label string."""
        return Label(label, label_kind(label))

    def __str__(self) -> str:  # pragma: no cover - trivial
        return self.value
