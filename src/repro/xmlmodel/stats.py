"""Descriptive statistics for XML trees and collections.

The paper reports collection-level figures such as the number of documents,
transactions, distinct items, leaf nodes, maximum fan-out and average depth
(Sec. 5.2).  This module computes the tree-level half of those statistics so
dataset generators and experiments can report comparable profiles.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List

from repro.xmlmodel.paths import complete_paths, maximal_tag_paths
from repro.xmlmodel.tree import XMLTree


@dataclass(frozen=True)
class TreeStats:
    """Per-tree structural statistics."""

    doc_id: str
    node_count: int
    leaf_count: int
    depth: int
    max_fanout: int
    distinct_tags: int
    complete_path_count: int
    tag_path_count: int


@dataclass
class CollectionStats:
    """Aggregate structural statistics for a collection of XML trees."""

    document_count: int = 0
    node_count: int = 0
    leaf_count: int = 0
    max_depth: int = 0
    max_fanout: int = 0
    distinct_tags: int = 0
    distinct_complete_paths: int = 0
    distinct_tag_paths: int = 0
    average_depth: float = 0.0
    per_tree: List[TreeStats] = field(default_factory=list)

    def as_dict(self) -> Dict[str, float]:
        """Return the aggregate statistics as a plain dictionary."""
        return {
            "document_count": self.document_count,
            "node_count": self.node_count,
            "leaf_count": self.leaf_count,
            "max_depth": self.max_depth,
            "max_fanout": self.max_fanout,
            "distinct_tags": self.distinct_tags,
            "distinct_complete_paths": self.distinct_complete_paths,
            "distinct_tag_paths": self.distinct_tag_paths,
            "average_depth": self.average_depth,
        }


def tree_stats(tree: XMLTree) -> TreeStats:
    """Compute :class:`TreeStats` for a single tree."""
    tags = {node.label for node in tree.iter_nodes() if node.is_element}
    return TreeStats(
        doc_id=tree.doc_id or "",
        node_count=tree.node_count(),
        leaf_count=tree.leaf_count(),
        depth=tree.depth(),
        max_fanout=tree.max_fanout(),
        distinct_tags=len(tags),
        complete_path_count=len(complete_paths(tree)),
        tag_path_count=len(maximal_tag_paths(tree)),
    )


def collection_stats(trees: Iterable[XMLTree]) -> CollectionStats:
    """Compute aggregate statistics for a collection of trees."""
    stats = CollectionStats()
    all_tags = set()
    all_complete = set()
    all_tag_paths = set()
    depth_sum = 0
    for tree in trees:
        per = tree_stats(tree)
        stats.per_tree.append(per)
        stats.document_count += 1
        stats.node_count += per.node_count
        stats.leaf_count += per.leaf_count
        stats.max_depth = max(stats.max_depth, per.depth)
        stats.max_fanout = max(stats.max_fanout, per.max_fanout)
        depth_sum += per.depth
        all_tags |= {node.label for node in tree.iter_nodes() if node.is_element}
        all_complete |= complete_paths(tree)
        all_tag_paths |= maximal_tag_paths(tree)
    stats.distinct_tags = len(all_tags)
    stats.distinct_complete_paths = len(all_complete)
    stats.distinct_tag_paths = len(all_tag_paths)
    if stats.document_count:
        stats.average_depth = depth_sum / stats.document_count
    return stats
