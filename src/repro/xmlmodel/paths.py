"""XML paths and path answers (paper Sec. 3.1).

An XML path ``p = s1.s2.....sm`` is a dot-separated sequence of symbols in
``Tag ∪ Att ∪ {S}``.  Paths are *tag paths* when they end with a tag name and
*complete paths* when they end with an attribute label or the ``S`` symbol.

Applying a path to an XML tree yields the set of nodes reachable by matching
the labels along root-to-node chains; the *answer* of a path is either that
node set (tag paths) or the set of leaf string values (complete paths).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Sequence, Set, Tuple

from repro.xmlmodel.errors import XMLPathError
from repro.xmlmodel.names import is_attribute_label, is_tag_label, is_text_label
from repro.xmlmodel.tree import XMLNode, XMLTree

#: Separator used in the textual rendering of paths (``dblp.inproceedings.S``).
PATH_SEPARATOR = "."


@dataclass(frozen=True, order=True)
class XMLPath:
    """An immutable XML path: a sequence of labels from the document root.

    Instances are hashable and totally ordered (lexicographically on their
    label sequence), which lets them serve as dictionary keys for the item
    domain of the transactional model.  The hash and the derived tag path are
    cached because similarity computations look paths up millions of times.
    """

    steps: Tuple[str, ...]

    def __post_init__(self) -> None:
        if not self.steps:
            raise XMLPathError("a path must have at least one step")
        for step in self.steps[:-1]:
            if not is_tag_label(step):
                raise XMLPathError(
                    f"only the last step of a path may be an attribute or 'S': {self}"
                )
        object.__setattr__(self, "_hash", hash(self.steps))
        object.__setattr__(self, "_tag_path", None)

    def __hash__(self) -> int:  # cached; steps are immutable
        return self._hash

    def __reduce__(self):
        """Rebuild through the constructor when unpickled.

        The cached ``_hash`` bakes in the per-process string-hash salt
        (``PYTHONHASHSEED``); restoring it verbatim in another process
        would make equal paths hash differently from locally constructed
        ones, silently breaking dict and set lookups that mix pickled and
        fresh paths (e.g. a worker probing its unpickled corpus registry
        with representatives decoded from the wire).
        """
        return (XMLPath, (self.steps,))

    # -- constructors ----------------------------------------------------- #
    @staticmethod
    def of(*steps: str) -> "XMLPath":
        """Build a path from individual step labels."""
        return XMLPath(tuple(steps))

    @staticmethod
    def parse(text: str) -> "XMLPath":
        """Parse the dotted textual form, e.g. ``"dblp.inproceedings.@key"``."""
        if not text:
            raise XMLPathError("cannot parse an empty path")
        return XMLPath(tuple(text.split(PATH_SEPARATOR)))

    @staticmethod
    def for_node(node: XMLNode) -> "XMLPath":
        """Return the root-to-*node* label path."""
        return XMLPath(node.label_path())

    # -- classification --------------------------------------------------- #
    @property
    def last(self) -> str:
        return self.steps[-1]

    @property
    def is_complete(self) -> bool:
        """True when the path ends with an attribute label or ``S``."""
        return is_attribute_label(self.last) or is_text_label(self.last)

    @property
    def is_tag_path(self) -> bool:
        """True when the path ends with a tag name."""
        return not self.is_complete

    @property
    def length(self) -> int:
        return len(self.steps)

    # -- derived paths ----------------------------------------------------- #
    def tag_path(self) -> "XMLPath":
        """Return the maximal tag path obtained by dropping a trailing
        attribute / ``S`` step (complete paths), or the path itself.

        The result is computed once and cached on the instance.
        """
        cached = self._tag_path
        if cached is not None:
            return cached
        if self.is_complete:
            if len(self.steps) == 1:
                raise XMLPathError(f"complete path {self} has no tag prefix")
            result = XMLPath(self.steps[:-1])
        else:
            result = self
        object.__setattr__(self, "_tag_path", result)
        return result

    def parent(self) -> "XMLPath":
        """Return the path with the last step removed."""
        if len(self.steps) == 1:
            raise XMLPathError("the root path has no parent")
        return XMLPath(self.steps[:-1])

    def child(self, step: str) -> "XMLPath":
        """Return the path extended with one more step."""
        return XMLPath(self.steps + (step,))

    def startswith(self, prefix: "XMLPath") -> bool:
        """Return True if *prefix* is a prefix of this path."""
        return self.steps[: len(prefix.steps)] == prefix.steps

    # -- rendering --------------------------------------------------------- #
    def __str__(self) -> str:
        return PATH_SEPARATOR.join(self.steps)

    def __iter__(self):
        return iter(self.steps)

    def __len__(self) -> int:
        return len(self.steps)


# --------------------------------------------------------------------------- #
# Path application and answers
# --------------------------------------------------------------------------- #
def apply_path(path: XMLPath, tree: XMLTree) -> List[XMLNode]:
    """Return ``p(XT)``: the nodes identified by applying *path* to *tree*.

    A node ``n`` belongs to the result when the labels along the root-to-``n``
    chain coincide step by step with the path.
    """
    if tree.root.label != path.steps[0]:
        return []
    frontier: List[XMLNode] = [tree.root]
    for step in path.steps[1:]:
        next_frontier: List[XMLNode] = []
        for node in frontier:
            for child in node.children:
                if child.label == step:
                    next_frontier.append(child)
        frontier = next_frontier
        if not frontier:
            return []
    return frontier


def path_answer(path: XMLPath, tree: XMLTree) -> FrozenSet:
    """Return the *answer* ``A_XT(p)`` of *path* on *tree*.

    For tag paths the answer is the frozen set of node identifiers; for
    complete paths it is the frozen set of leaf string values (``delta``).
    """
    nodes = apply_path(path, tree)
    if path.is_tag_path:
        return frozenset(node.node_id for node in nodes)
    return frozenset(node.value for node in nodes if node.value is not None)


def complete_paths(tree: XMLTree) -> Set[XMLPath]:
    """Return ``P_XT``: the set of all complete paths occurring in *tree*."""
    return {XMLPath.for_node(leaf) for leaf in tree.iter_leaves()}


def maximal_tag_paths(tree: XMLTree) -> Set[XMLPath]:
    """Return ``TP_XT``: maximal tag paths (complete paths minus last step)."""
    return {path.tag_path() for path in complete_paths(tree)}


def all_tag_paths(tree: XMLTree) -> Set[XMLPath]:
    """Return every tag path occurring in *tree* (all prefixes over elements)."""
    paths: Set[XMLPath] = set()
    for node in tree.iter_nodes():
        if node.is_element:
            paths.add(XMLPath.for_node(node))
    return paths


def leaf_paths_with_nodes(tree: XMLTree) -> List[Tuple[XMLPath, XMLNode]]:
    """Return (complete path, leaf node) pairs in document order."""
    return [(XMLPath.for_node(leaf), leaf) for leaf in tree.iter_leaves()]


def path_answers_by_path(tree: XMLTree) -> Dict[XMLPath, FrozenSet]:
    """Return the mapping from every complete path of *tree* to its answer."""
    return {path: path_answer(path, tree) for path in complete_paths(tree)}


def collection_complete_paths(trees: Iterable[XMLTree]) -> Set[XMLPath]:
    """Return the union of complete paths over a collection of trees."""
    result: Set[XMLPath] = set()
    for tree in trees:
        result |= complete_paths(tree)
    return result


def collection_tag_paths(trees: Iterable[XMLTree]) -> Set[XMLPath]:
    """Return the union of maximal tag paths over a collection of trees."""
    result: Set[XMLPath] = set()
    for tree in trees:
        result |= maximal_tag_paths(tree)
    return result


def depth_of_paths(paths: Sequence[XMLPath]) -> int:
    """Return the length of the longest path (the collection depth)."""
    return max((p.length for p in paths), default=0)
