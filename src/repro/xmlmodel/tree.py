"""XML tree model (paper Sec. 3.1).

An XML tree ``XT = <T, delta>`` is a labelled rooted tree whose internal
nodes carry element tag names and whose leaves carry either attribute names
(``@name``) or the ``#PCDATA`` sentinel ``S``; the function ``delta`` maps
every leaf to the string value attached to it.

The implementation keeps nodes as light-weight objects with integer
identifiers assigned in document order, which mirrors the ``n1 .. n27``
numbering used in the paper's running example (Fig. 2) and makes tree tuples
easy to cross-check against the paper by hand.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.xmlmodel.errors import XMLTreeError
from repro.xmlmodel.names import (
    PCDATA,
    attribute_label,
    is_attribute_label,
    is_tag_label,
    is_text_label,
    validate_tag,
)


class XMLNode:
    """A single node of an :class:`XMLTree`.

    Attributes
    ----------
    node_id:
        Integer identifier, unique within the owning tree, assigned in
        document (pre-) order starting from 1.
    label:
        Element tag name for internal nodes; ``@name`` for attribute leaves;
        ``"S"`` for text (``#PCDATA``) leaves.
    value:
        Leaf string value (``delta``); ``None`` for internal nodes.
    parent:
        Parent node, or ``None`` for the root.
    children:
        Ordered list of child nodes (always empty for leaves).
    """

    __slots__ = ("node_id", "label", "value", "parent", "children")

    def __init__(
        self,
        node_id: int,
        label: str,
        value: Optional[str] = None,
        parent: Optional["XMLNode"] = None,
    ) -> None:
        self.node_id = node_id
        self.label = label
        self.value = value
        self.parent = parent
        self.children: List[XMLNode] = []

    # ------------------------------------------------------------------ #
    # Classification helpers
    # ------------------------------------------------------------------ #
    @property
    def is_leaf(self) -> bool:
        """True when the node has no children."""
        return not self.children

    @property
    def is_text(self) -> bool:
        """True for ``#PCDATA`` leaves (label ``S``)."""
        return is_text_label(self.label)

    @property
    def is_attribute(self) -> bool:
        """True for attribute leaves (label ``@name``)."""
        return is_attribute_label(self.label)

    @property
    def is_element(self) -> bool:
        """True for element (tag) nodes."""
        return is_tag_label(self.label)

    # ------------------------------------------------------------------ #
    # Navigation helpers
    # ------------------------------------------------------------------ #
    def ancestors(self) -> Iterator["XMLNode"]:
        """Yield ancestors from the parent up to the root."""
        node = self.parent
        while node is not None:
            yield node
            node = node.parent

    def depth(self) -> int:
        """Return the number of edges from the root to this node."""
        return sum(1 for _ in self.ancestors())

    def label_path(self) -> Tuple[str, ...]:
        """Return the sequence of labels from the root down to this node."""
        labels = [self.label]
        for anc in self.ancestors():
            labels.append(anc.label)
        return tuple(reversed(labels))

    def node_path(self) -> Tuple["XMLNode", ...]:
        """Return the sequence of nodes from the root down to this node."""
        nodes = [self]
        for anc in self.ancestors():
            nodes.append(anc)
        return tuple(reversed(nodes))

    def iter_preorder(self) -> Iterator["XMLNode"]:
        """Yield this node and all descendants in document (pre-) order."""
        stack: List[XMLNode] = [self]
        while stack:
            node = stack.pop()
            yield node
            stack.extend(reversed(node.children))

    def iter_leaves(self) -> Iterator["XMLNode"]:
        """Yield all leaf descendants (including self when it is a leaf)."""
        for node in self.iter_preorder():
            if node.is_leaf:
                yield node

    def child_elements(self) -> List["XMLNode"]:
        """Return the element children only (no attribute / text leaves)."""
        return [c for c in self.children if c.is_element]

    # ------------------------------------------------------------------ #
    # Dunder methods
    # ------------------------------------------------------------------ #
    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        if self.is_leaf and self.value is not None:
            return f"XMLNode(n{self.node_id}, {self.label!r}={self.value!r})"
        return f"XMLNode(n{self.node_id}, {self.label!r}, {len(self.children)} children)"


class XMLTree:
    """A labelled rooted XML tree with leaf string values.

    Trees are normally built through :class:`XMLTreeBuilder` or
    :func:`repro.xmlmodel.parser.parse_xml`; the raw constructor accepts a
    pre-built root for internal use.
    """

    def __init__(self, root: XMLNode, doc_id: Optional[str] = None) -> None:
        if root.parent is not None:
            raise XMLTreeError("the root node must not have a parent")
        self.root = root
        #: Optional identifier of the originating document (file name, URI...).
        self.doc_id = doc_id
        self._nodes_by_id: Dict[int, XMLNode] = {
            node.node_id: node for node in root.iter_preorder()
        }
        self._validate()

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @staticmethod
    def build(doc_id: Optional[str] = None) -> "XMLTreeBuilder":
        """Return a fresh :class:`XMLTreeBuilder` (fluent construction API)."""
        return XMLTreeBuilder(doc_id=doc_id)

    def _validate(self) -> None:
        """Check the structural invariants required by the formal model."""
        for node in self.iter_nodes():
            if node.is_element:
                if node.value is not None:
                    raise XMLTreeError(
                        f"element node n{node.node_id} ({node.label}) must not carry a value"
                    )
            else:
                if node.children:
                    raise XMLTreeError(
                        f"leaf-labelled node n{node.node_id} ({node.label}) must not have children"
                    )
                if node.value is None:
                    raise XMLTreeError(
                        f"leaf node n{node.node_id} ({node.label}) must carry a string value"
                    )
            for child in node.children:
                if child.parent is not node:
                    raise XMLTreeError(
                        f"node n{child.node_id} has an inconsistent parent pointer"
                    )

    # ------------------------------------------------------------------ #
    # Accessors
    # ------------------------------------------------------------------ #
    def node(self, node_id: int) -> XMLNode:
        """Return the node with the given identifier.

        Raises
        ------
        KeyError
            If no node with that identifier exists in this tree.
        """
        return self._nodes_by_id[node_id]

    def iter_nodes(self) -> Iterator[XMLNode]:
        """Yield every node in document order."""
        return self.root.iter_preorder()

    def iter_leaves(self) -> Iterator[XMLNode]:
        """Yield every leaf node in document order."""
        return self.root.iter_leaves()

    def leaves(self) -> List[XMLNode]:
        """Return the list of leaf nodes in document order."""
        return list(self.iter_leaves())

    def node_count(self) -> int:
        """Return the total number of nodes."""
        return len(self._nodes_by_id)

    def leaf_count(self) -> int:
        """Return the number of leaf nodes."""
        return sum(1 for _ in self.iter_leaves())

    def depth(self) -> int:
        """Return the depth of the tree measured in *path length* (number of
        labels on the longest root-to-leaf path), as used by the paper for
        ``depth(XT)``."""
        return max((leaf.depth() + 1 for leaf in self.iter_leaves()), default=1)

    def max_fanout(self) -> int:
        """Return the maximum number of children over all nodes."""
        return max((len(n.children) for n in self.iter_nodes()), default=0)

    def subtree_nodes(self, node: XMLNode) -> List[XMLNode]:
        """Return all nodes of the subtree rooted at *node* (document order)."""
        return list(node.iter_preorder())

    # ------------------------------------------------------------------ #
    # Transformations
    # ------------------------------------------------------------------ #
    def copy(self) -> "XMLTree":
        """Return a deep copy with identical node identifiers."""
        mapping: Dict[int, XMLNode] = {}

        def clone(node: XMLNode, parent: Optional[XMLNode]) -> XMLNode:
            new = XMLNode(node.node_id, node.label, node.value, parent)
            mapping[node.node_id] = new
            for child in node.children:
                new.children.append(clone(child, new))
            return new

        return XMLTree(clone(self.root, None), doc_id=self.doc_id)

    def restricted_to(self, keep_ids: Iterable[int]) -> "XMLTree":
        """Return the subtree induced by *keep_ids* (node identifiers).

        The root must be part of the kept set; children not in the set are
        dropped together with their descendants.  Node identifiers are
        preserved, which is what makes tree tuples directly comparable with
        the original tree (paper Fig. 3).
        """
        keep = set(keep_ids)
        if self.root.node_id not in keep:
            raise XMLTreeError("the root must belong to the restriction set")

        def clone(node: XMLNode, parent: Optional[XMLNode]) -> XMLNode:
            new = XMLNode(node.node_id, node.label, node.value, parent)
            for child in node.children:
                if child.node_id in keep:
                    new.children.append(clone(child, new))
            return new

        return XMLTree(clone(self.root, None), doc_id=self.doc_id)

    def map_values(self, fn: Callable[[str], str]) -> "XMLTree":
        """Return a copy whose leaf values have been transformed by *fn*."""
        copy = self.copy()
        for node in copy.iter_nodes():
            if node.value is not None:
                node.value = fn(node.value)
        return copy

    # ------------------------------------------------------------------ #
    # Comparison / hashing
    # ------------------------------------------------------------------ #
    def structure_signature(self) -> Tuple:
        """Return a hashable signature of labels+values (ignores node ids)."""

        def sig(node: XMLNode) -> Tuple:
            return (node.label, node.value, tuple(sig(c) for c in node.children))

        return sig(self.root)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, XMLTree):
            return NotImplemented
        return self.structure_signature() == other.structure_signature()

    def __hash__(self) -> int:
        return hash(self.structure_signature())

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"XMLTree(doc_id={self.doc_id!r}, nodes={self.node_count()}, "
            f"depth={self.depth()})"
        )


class XMLTreeBuilder:
    """Fluent builder used by the parser, generators and tests.

    Example
    -------
    >>> b = XMLTree.build("example")
    >>> b.start("dblp")
    >>> b.start("inproceedings")
    >>> b.attribute("key", "conf/kdd/ZakiA03")
    >>> b.start("author"); b.text("M.J. Zaki"); b.end()
    >>> b.end(); b.end()
    >>> tree = b.finish()
    """

    def __init__(self, doc_id: Optional[str] = None) -> None:
        self._doc_id = doc_id
        self._next_id = 1
        self._root: Optional[XMLNode] = None
        self._stack: List[XMLNode] = []

    # -- internal -------------------------------------------------------- #
    def _new_node(self, label: str, value: Optional[str]) -> XMLNode:
        parent = self._stack[-1] if self._stack else None
        node = XMLNode(self._next_id, label, value, parent)
        self._next_id += 1
        if parent is None:
            if self._root is not None:
                raise XMLTreeError("a tree can only have a single root element")
            self._root = node
        else:
            parent.children.append(node)
        return node

    # -- public API ------------------------------------------------------ #
    def start(self, tag: str) -> "XMLTreeBuilder":
        """Open an element with the given tag name."""
        node = self._new_node(validate_tag(tag), None)
        self._stack.append(node)
        return self

    def end(self) -> "XMLTreeBuilder":
        """Close the most recently opened element."""
        if not self._stack:
            raise XMLTreeError("end() called with no open element")
        self._stack.pop()
        return self

    def attribute(self, name: str, value: str) -> "XMLTreeBuilder":
        """Attach an attribute leaf ``@name = value`` to the open element."""
        if not self._stack:
            raise XMLTreeError("attribute() requires an open element")
        self._new_node(attribute_label(name), str(value))
        return self

    def text(self, value: str) -> "XMLTreeBuilder":
        """Attach a ``#PCDATA`` leaf to the open element."""
        if not self._stack:
            raise XMLTreeError("text() requires an open element")
        self._new_node(PCDATA, str(value))
        return self

    def element(self, tag: str, text: Optional[str] = None, **attributes: str) -> "XMLTreeBuilder":
        """Convenience: open an element, add attributes/text, and close it."""
        self.start(tag)
        for name, value in attributes.items():
            self.attribute(name, value)
        if text is not None:
            self.text(text)
        return self.end()

    def finish(self) -> XMLTree:
        """Return the completed :class:`XMLTree`.

        Raises
        ------
        XMLTreeError
            If elements are still open or no root was created.
        """
        if self._stack:
            open_tags = ", ".join(n.label for n in self._stack)
            raise XMLTreeError(f"unclosed elements: {open_tags}")
        if self._root is None:
            raise XMLTreeError("no root element was created")
        return XMLTree(self._root, doc_id=self._doc_id)


def tree_from_nested(spec: Sequence, doc_id: Optional[str] = None) -> XMLTree:
    """Build a tree from a nested-list specification.

    The specification format is ``[tag, child1, child2, ...]`` where each
    child is either another nested list, a string (text leaf), or a tuple
    ``("@name", value)`` for attributes.  This is heavily used by tests and
    dataset generators because it keeps fixtures compact and legible.

    Example
    -------
    >>> tree = tree_from_nested(
    ...     ["dblp", ["inproceedings", ("@key", "k1"), ["author", "M.J. Zaki"]]]
    ... )
    """
    builder = XMLTreeBuilder(doc_id=doc_id)

    def visit(node_spec: Sequence) -> None:
        if not node_spec:
            raise XMLTreeError("empty node specification")
        tag = node_spec[0]
        builder.start(tag)
        for child in node_spec[1:]:
            if isinstance(child, str):
                builder.text(child)
            elif isinstance(child, tuple):
                name, value = child
                if not name.startswith("@"):
                    raise XMLTreeError(
                        f"attribute specifications must start with '@': {name!r}"
                    )
                builder.attribute(name[1:], value)
            elif isinstance(child, (list,)):
                visit(child)
            else:
                raise XMLTreeError(f"unsupported child specification: {child!r}")
        builder.end()

    visit(spec)
    return builder.finish()
