"""Exception hierarchy for the XML model layer.

All exceptions raised by :mod:`repro.xmlmodel` derive from :class:`XMLError`
so callers can catch a single base class.  Parsing failures carry positional
information (line and column) to make malformed synthetic documents easy to
debug.
"""

from __future__ import annotations


class XMLError(Exception):
    """Base class for every error raised by the XML model layer."""


class XMLSyntaxError(XMLError):
    """Raised when the pure-Python parser encounters malformed markup.

    Parameters
    ----------
    message:
        Human readable description of the problem.
    line, column:
        1-based position of the offending character in the input text.
    """

    def __init__(self, message: str, line: int = 0, column: int = 0) -> None:
        self.line = line
        self.column = column
        if line:
            message = f"{message} (line {line}, column {column})"
        super().__init__(message)


class XMLTreeError(XMLError):
    """Raised for structural violations when building or editing trees.

    Examples include attaching a node to two parents, adding children to leaf
    string nodes, or labelling an internal node with an attribute name.
    """


class XMLPathError(XMLError):
    """Raised when an XML path expression is syntactically invalid."""
