"""Serialisation of :class:`~repro.xmlmodel.tree.XMLTree` back to XML text.

Serialisation is used by the dataset generators (to materialise synthetic
corpora on disk), by examples, and in tests to verify the
``parse(serialize(tree)) == tree`` round-trip property.
"""

from __future__ import annotations

from typing import List

from repro.xmlmodel.names import strip_attribute_prefix
from repro.xmlmodel.tree import XMLNode, XMLTree

_ESCAPES_TEXT = [("&", "&amp;"), ("<", "&lt;"), (">", "&gt;")]
_ESCAPES_ATTR = _ESCAPES_TEXT + [('"', "&quot;")]


def escape_text(value: str) -> str:
    """Escape character data for inclusion in element content."""
    for raw, escaped in _ESCAPES_TEXT:
        value = value.replace(raw, escaped)
    return value


def escape_attribute(value: str) -> str:
    """Escape character data for inclusion in a double-quoted attribute."""
    for raw, escaped in _ESCAPES_ATTR:
        value = value.replace(raw, escaped)
    return value


def serialize(tree: XMLTree, indent: int = 2, xml_declaration: bool = True) -> str:
    """Serialise *tree* to a pretty-printed XML string.

    Parameters
    ----------
    tree:
        The tree to serialise.
    indent:
        Number of spaces per nesting level; ``0`` produces compact output.
    xml_declaration:
        Whether to emit the leading ``<?xml ...?>`` declaration.
    """
    lines: List[str] = []
    if xml_declaration:
        lines.append('<?xml version="1.0" encoding="UTF-8"?>')
    _serialize_node(tree.root, lines, 0, indent)
    return "\n".join(lines) + "\n"


def _attributes_of(node: XMLNode) -> List[str]:
    parts = []
    for child in node.children:
        if child.is_attribute:
            name = strip_attribute_prefix(child.label)
            parts.append(f'{name}="{escape_attribute(child.value or "")}"')
    return parts


def _serialize_node(node: XMLNode, lines: List[str], level: int, indent: int) -> None:
    pad = " " * (indent * level)
    attr_str = "".join(" " + a for a in _attributes_of(node))
    content_children = [c for c in node.children if not c.is_attribute]

    if not content_children:
        lines.append(f"{pad}<{node.label}{attr_str}/>")
        return

    # Single text child: keep it on one line for readability.
    if len(content_children) == 1 and content_children[0].is_text:
        text = escape_text(content_children[0].value or "")
        lines.append(f"{pad}<{node.label}{attr_str}>{text}</{node.label}>")
        return

    lines.append(f"{pad}<{node.label}{attr_str}>")
    for child in content_children:
        if child.is_text:
            lines.append(" " * (indent * (level + 1)) + escape_text(child.value or ""))
        else:
            _serialize_node(child, lines, level + 1, indent)
    lines.append(f"{pad}</{node.label}>")


def to_compact_string(tree: XMLTree) -> str:
    """Serialise *tree* without indentation or declaration (useful in tests)."""

    def render(node: XMLNode) -> str:
        attr_str = "".join(" " + a for a in _attributes_of(node))
        content = [c for c in node.children if not c.is_attribute]
        if not content:
            return f"<{node.label}{attr_str}/>"
        inner = "".join(
            escape_text(c.value or "") if c.is_text else render(c) for c in content
        )
        return f"<{node.label}{attr_str}>{inner}</{node.label}>"

    return render(tree.root)
