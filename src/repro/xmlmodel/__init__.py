"""XML document model: trees, parsing, serialisation and paths (paper Sec. 3.1)."""

from repro.xmlmodel.errors import XMLError, XMLPathError, XMLSyntaxError, XMLTreeError
from repro.xmlmodel.names import (
    ATTRIBUTE_PREFIX,
    PCDATA,
    Label,
    LabelKind,
    attribute_label,
    is_attribute_label,
    is_tag_label,
    is_text_label,
)
from repro.xmlmodel.parser import XMLParser, parse_xml, parse_xml_file
from repro.xmlmodel.paths import (
    XMLPath,
    all_tag_paths,
    apply_path,
    collection_complete_paths,
    collection_tag_paths,
    complete_paths,
    leaf_paths_with_nodes,
    maximal_tag_paths,
    path_answer,
    path_answers_by_path,
)
from repro.xmlmodel.serializer import serialize, to_compact_string
from repro.xmlmodel.stats import CollectionStats, TreeStats, collection_stats, tree_stats
from repro.xmlmodel.tree import XMLNode, XMLTree, XMLTreeBuilder, tree_from_nested

__all__ = [
    "XMLError",
    "XMLSyntaxError",
    "XMLTreeError",
    "XMLPathError",
    "PCDATA",
    "ATTRIBUTE_PREFIX",
    "Label",
    "LabelKind",
    "attribute_label",
    "is_attribute_label",
    "is_tag_label",
    "is_text_label",
    "XMLParser",
    "parse_xml",
    "parse_xml_file",
    "XMLPath",
    "apply_path",
    "path_answer",
    "complete_paths",
    "maximal_tag_paths",
    "all_tag_paths",
    "leaf_paths_with_nodes",
    "path_answers_by_path",
    "collection_complete_paths",
    "collection_tag_paths",
    "serialize",
    "to_compact_string",
    "XMLNode",
    "XMLTree",
    "XMLTreeBuilder",
    "tree_from_nested",
    "TreeStats",
    "CollectionStats",
    "tree_stats",
    "collection_stats",
]
