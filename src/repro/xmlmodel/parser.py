"""A from-scratch, pure-Python XML parser.

The reproduction does not rely on ``lxml`` or ``xml.etree``; instead this
module implements a small recursive-descent parser that covers the subset of
XML needed for the paper's data model:

* elements with attributes,
* character data (``#PCDATA``), with standard entity references,
* CDATA sections,
* comments and processing instructions (skipped),
* an optional XML declaration and DOCTYPE (skipped).

The parser produces :class:`repro.xmlmodel.tree.XMLTree` instances whose node
identifiers follow document order, matching the conventions of the paper's
running example.  Whitespace-only text between elements is dropped (it does
not carry content in data-oriented XML); mixed content with non-blank text is
preserved as ``S`` leaves.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.xmlmodel.errors import XMLSyntaxError
from repro.xmlmodel.tree import XMLTree, XMLTreeBuilder

#: Standard predefined XML entities.
_ENTITIES: Dict[str, str] = {
    "lt": "<",
    "gt": ">",
    "amp": "&",
    "apos": "'",
    "quot": '"',
}

_NAME_START = re.compile(r"[A-Za-z_:]")
_NAME_CHAR = re.compile(r"[A-Za-z0-9_.:\-]")


class _Scanner:
    """Character scanner with line/column tracking for error reporting."""

    def __init__(self, text: str) -> None:
        self.text = text
        self.pos = 0
        self.length = len(text)

    # -- position helpers ------------------------------------------------ #
    def location(self, pos: Optional[int] = None) -> Tuple[int, int]:
        """Return (line, column), both 1-based, for *pos* (default current)."""
        if pos is None:
            pos = self.pos
        line = self.text.count("\n", 0, pos) + 1
        last_nl = self.text.rfind("\n", 0, pos)
        column = pos - last_nl
        return line, column

    def error(self, message: str, pos: Optional[int] = None) -> XMLSyntaxError:
        line, column = self.location(pos)
        return XMLSyntaxError(message, line, column)

    # -- primitives ------------------------------------------------------ #
    @property
    def eof(self) -> bool:
        return self.pos >= self.length

    def peek(self, offset: int = 0) -> str:
        index = self.pos + offset
        return self.text[index] if index < self.length else ""

    def advance(self, count: int = 1) -> None:
        self.pos += count

    def startswith(self, token: str) -> bool:
        return self.text.startswith(token, self.pos)

    def expect(self, token: str) -> None:
        if not self.startswith(token):
            raise self.error(f"expected {token!r}")
        self.advance(len(token))

    def skip_whitespace(self) -> None:
        while not self.eof and self.text[self.pos] in " \t\r\n":
            self.pos += 1

    def read_until(self, token: str, what: str) -> str:
        end = self.text.find(token, self.pos)
        if end < 0:
            raise self.error(f"unterminated {what}: missing {token!r}")
        chunk = self.text[self.pos:end]
        self.pos = end + len(token)
        return chunk

    def read_name(self) -> str:
        start = self.pos
        if self.eof or not _NAME_START.match(self.text[self.pos]):
            raise self.error("expected an XML name")
        self.pos += 1
        while not self.eof and _NAME_CHAR.match(self.text[self.pos]):
            self.pos += 1
        return self.text[start:self.pos]


def decode_entities(text: str, scanner: Optional[_Scanner] = None) -> str:
    """Resolve the predefined entities and numeric character references."""

    def replace(match: "re.Match[str]") -> str:
        body = match.group(1)
        if body.startswith("#x") or body.startswith("#X"):
            return chr(int(body[2:], 16))
        if body.startswith("#"):
            return chr(int(body[1:]))
        if body in _ENTITIES:
            return _ENTITIES[body]
        if scanner is not None:
            raise scanner.error(f"unknown entity: &{body};")
        raise XMLSyntaxError(f"unknown entity: &{body};")

    return re.sub(r"&([^;&\s]+);", replace, text)


class XMLParser:
    """Recursive-descent XML parser producing :class:`XMLTree` objects.

    Parameters
    ----------
    keep_whitespace_text:
        When ``True``, whitespace-only text nodes are kept as ``S`` leaves.
        The default (``False``) mirrors data-oriented XML processing where
        indentation between elements carries no information.
    """

    def __init__(self, keep_whitespace_text: bool = False) -> None:
        self.keep_whitespace_text = keep_whitespace_text

    # ------------------------------------------------------------------ #
    def parse(self, text: str, doc_id: Optional[str] = None) -> XMLTree:
        """Parse *text* and return the resulting :class:`XMLTree`."""
        scanner = _Scanner(text)
        builder = XMLTreeBuilder(doc_id=doc_id)
        self._skip_prolog(scanner)
        scanner.skip_whitespace()
        if scanner.eof or scanner.peek() != "<":
            raise scanner.error("document has no root element")
        self._parse_element(scanner, builder)
        # Only comments / PIs / whitespace may follow the root element.
        while not scanner.eof:
            scanner.skip_whitespace()
            if scanner.eof:
                break
            if scanner.startswith("<!--"):
                self._skip_comment(scanner)
            elif scanner.startswith("<?"):
                self._skip_pi(scanner)
            else:
                raise scanner.error("unexpected content after the root element")
        return builder.finish()

    # ------------------------------------------------------------------ #
    # Prolog, comments, PIs, doctype
    # ------------------------------------------------------------------ #
    def _skip_prolog(self, scanner: _Scanner) -> None:
        while True:
            scanner.skip_whitespace()
            if scanner.startswith("<?"):
                self._skip_pi(scanner)
            elif scanner.startswith("<!--"):
                self._skip_comment(scanner)
            elif scanner.startswith("<!DOCTYPE"):
                self._skip_doctype(scanner)
            else:
                return

    @staticmethod
    def _skip_pi(scanner: _Scanner) -> None:
        scanner.expect("<?")
        scanner.read_until("?>", "processing instruction")

    @staticmethod
    def _skip_comment(scanner: _Scanner) -> None:
        scanner.expect("<!--")
        scanner.read_until("-->", "comment")

    @staticmethod
    def _skip_doctype(scanner: _Scanner) -> None:
        scanner.expect("<!DOCTYPE")
        depth = 1
        while depth > 0:
            if scanner.eof:
                raise scanner.error("unterminated DOCTYPE declaration")
            ch = scanner.peek()
            if ch == "<":
                depth += 1
            elif ch == ">":
                depth -= 1
            scanner.advance()

    # ------------------------------------------------------------------ #
    # Elements
    # ------------------------------------------------------------------ #
    def _parse_element(self, scanner: _Scanner, builder: XMLTreeBuilder) -> None:
        scanner.expect("<")
        tag = scanner.read_name()
        builder.start(tag)
        attributes = self._parse_attributes(scanner)
        for name, value in attributes:
            builder.attribute(name, value)
        scanner.skip_whitespace()
        if scanner.startswith("/>"):
            scanner.advance(2)
            builder.end()
            return
        scanner.expect(">")
        self._parse_content(scanner, builder, tag)
        builder.end()

    def _parse_attributes(self, scanner: _Scanner) -> List[Tuple[str, str]]:
        attributes: List[Tuple[str, str]] = []
        while True:
            scanner.skip_whitespace()
            ch = scanner.peek()
            if ch in ("/", ">", ""):
                return attributes
            name = scanner.read_name()
            scanner.skip_whitespace()
            scanner.expect("=")
            scanner.skip_whitespace()
            quote = scanner.peek()
            if quote not in ("'", '"'):
                raise scanner.error("attribute values must be quoted")
            scanner.advance()
            raw = scanner.read_until(quote, "attribute value")
            attributes.append((name, decode_entities(raw, scanner)))

    def _parse_content(
        self, scanner: _Scanner, builder: XMLTreeBuilder, open_tag: str
    ) -> None:
        text_parts: List[str] = []

        def flush_text() -> None:
            if not text_parts:
                return
            text = "".join(text_parts)
            text_parts.clear()
            if text.strip() or (self.keep_whitespace_text and text):
                builder.text(decode_entities(text, scanner))

        while True:
            if scanner.eof:
                raise scanner.error(f"unterminated element <{open_tag}>")
            if scanner.startswith("</"):
                flush_text()
                scanner.advance(2)
                name = scanner.read_name()
                if name != open_tag:
                    raise scanner.error(
                        f"mismatched closing tag: expected </{open_tag}>, got </{name}>"
                    )
                scanner.skip_whitespace()
                scanner.expect(">")
                return
            if scanner.startswith("<!--"):
                flush_text()
                self._skip_comment(scanner)
                continue
            if scanner.startswith("<![CDATA["):
                scanner.advance(len("<![CDATA["))
                text_parts.append(scanner.read_until("]]>", "CDATA section"))
                continue
            if scanner.startswith("<?"):
                flush_text()
                self._skip_pi(scanner)
                continue
            if scanner.peek() == "<":
                flush_text()
                self._parse_element(scanner, builder)
                continue
            # plain character data up to the next markup character
            next_lt = scanner.text.find("<", scanner.pos)
            if next_lt < 0:
                raise scanner.error(f"unterminated element <{open_tag}>")
            text_parts.append(scanner.text[scanner.pos:next_lt])
            scanner.pos = next_lt


def parse_xml(text: str, doc_id: Optional[str] = None, keep_whitespace_text: bool = False) -> XMLTree:
    """Parse an XML document string into an :class:`XMLTree`.

    This is the main entry point used throughout the library and the
    examples.  See :class:`XMLParser` for the supported XML subset.
    """
    return XMLParser(keep_whitespace_text=keep_whitespace_text).parse(text, doc_id=doc_id)


def parse_xml_file(path: str, doc_id: Optional[str] = None, encoding: str = "utf-8") -> XMLTree:
    """Parse the XML document stored at *path*."""
    with open(path, "r", encoding=encoding) as handle:
        text = handle.read()
    return parse_xml(text, doc_id=doc_id or path)
