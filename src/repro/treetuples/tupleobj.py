"""The :class:`TreeTuple` value object (paper Sec. 3.2).

A tree tuple is a *maximal* subtree ``tau`` of an XML tree ``XT`` such that
every (tag or complete) path of ``XT`` has an answer of size at most one on
``tau``.  Tree tuples resemble relational tuples: each complete path plays
the role of an attribute and its (single) answer plays the role of the value.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, List, Optional, Tuple

from repro.xmlmodel.paths import XMLPath, complete_paths, path_answer
from repro.xmlmodel.tree import XMLTree


@dataclass(frozen=True)
class TreeTuple:
    """A tree tuple extracted from an XML tree.

    Attributes
    ----------
    tree:
        The tree-tuple subtree itself (node identifiers are preserved from
        the original document tree, as in the paper's Fig. 3).
    source_doc_id:
        Identifier of the originating document.
    tuple_id:
        Identifier of the tuple, unique within the originating document
        (``"<doc_id>#<index>"`` by convention when built by the extractor).
    """

    tree: XMLTree
    source_doc_id: str
    tuple_id: str

    # ------------------------------------------------------------------ #
    # Relational view
    # ------------------------------------------------------------------ #
    def paths(self) -> FrozenSet[XMLPath]:
        """Return ``P_tau``: the set of complete paths of the tuple."""
        return frozenset(complete_paths(self.tree))

    def answer(self, path: XMLPath) -> Optional[str]:
        """Return the single string answer of a complete *path*, or ``None``.

        By the defining property of tree tuples the answer set has size at
        most one, so it is safe to collapse it to a scalar.
        """
        values = path_answer(path, self.tree)
        if not values:
            return None
        if len(values) > 1:  # pragma: no cover - guarded by extraction invariant
            raise ValueError(
                f"tree tuple {self.tuple_id} has a non-functional path {path}"
            )
        return next(iter(values))

    def as_pairs(self) -> List[Tuple[XMLPath, str]]:
        """Return sorted (complete path, answer) pairs -- the relational view."""
        pairs = []
        for path in sorted(self.paths()):
            value = self.answer(path)
            if value is not None:
                pairs.append((path, value))
        return pairs

    def as_dict(self) -> Dict[str, str]:
        """Return the relational view keyed by the textual path form."""
        return {str(path): value for path, value in self.as_pairs()}

    # ------------------------------------------------------------------ #
    # Convenience
    # ------------------------------------------------------------------ #
    def leaf_count(self) -> int:
        """Return the number of leaves (equivalently, of complete paths
        counted with multiplicity one, since answers are functional)."""
        return self.tree.leaf_count()

    def node_ids(self) -> FrozenSet[int]:
        """Return the identifiers of the nodes that make up the tuple."""
        return frozenset(node.node_id for node in self.tree.iter_nodes())

    def __len__(self) -> int:
        return self.leaf_count()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"TreeTuple({self.tuple_id}, {self.leaf_count()} leaves)"


def is_tree_tuple(subtree: XMLTree, original: XMLTree) -> bool:
    """Check the defining property: every path of *original* has an answer of
    size at most one on *subtree* (Sec. 3.2).

    Both tag paths and complete paths must be functional.  This predicate is
    used by tests and by the property-based verification of the extractor; it
    intentionally favours clarity over speed.
    """
    # Collect every path (tag and complete) of the original tree.
    seen_paths = set()
    for node in original.iter_nodes():
        seen_paths.add(XMLPath.for_node(node))
    for path in seen_paths:
        if len(path_answer(path, subtree)) > 1:
            return False
    return True


def is_maximal_tree_tuple(subtree: XMLTree, original: XMLTree) -> bool:
    """Check maximality: no node of *original* can be added to *subtree*
    while keeping the tree-tuple property.

    A candidate node is addable when its parent already belongs to the
    subtree; adding it must break functionality for the subtree to be maximal.
    """
    if not is_tree_tuple(subtree, original):
        return False
    kept = {node.node_id for node in subtree.iter_nodes()}
    for node in original.iter_nodes():
        if node.node_id in kept or node.parent is None:
            continue
        if node.parent.node_id not in kept:
            continue
        # Try to add this node together with its whole subtree? Maximality in
        # the paper is node-wise: a maximal subtree cannot be extended by any
        # single node.  Adding `node` alone is the weakest extension, so if it
        # keeps functionality the subtree is not maximal.
        extended = original.restricted_to(kept | {node.node_id})
        if is_tree_tuple(extended, original):
            return False
    return True
