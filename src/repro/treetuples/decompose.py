"""Decomposition of XML trees into tree tuples (paper Sec. 3.2, Fig. 3).

A tree tuple is a maximal subtree on which every (tag or complete) path of
the original tree has an answer of size at most one.  Operationally, the set
of tree tuples of a tree is obtained by a product construction:

* the tuples of a leaf are the leaf itself;
* the tuples of an internal node are obtained by grouping its children by
  label, picking **exactly one child per label group** and **one tuple of
  that child**, and combining the choices across groups.

Choosing one child per group guarantees functionality (no label path can
reach two nodes) and taking one per *every* non-empty group guarantees
maximality (no further node can be added without repeating a label path).

The number of tuples is a product of group sizes and can therefore grow
combinatorially for documents with many repeated sibling labels at several
levels; :func:`count_tree_tuples` computes the count without materialising
the tuples, and :func:`extract_tree_tuples` accepts a ``limit`` that bounds
materialisation (the paper's corpora stay comfortably small because repeated
labels concentrate on one level, e.g. ``author`` under ``inproceedings``).
"""

from __future__ import annotations

from itertools import product
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set

from repro.treetuples.tupleobj import TreeTuple
from repro.xmlmodel.tree import XMLNode, XMLTree


def _group_children_by_label(node: XMLNode) -> List[List[XMLNode]]:
    """Group the children of *node* by label, preserving document order of
    the first occurrence of each label."""
    groups: Dict[str, List[XMLNode]] = {}
    order: List[str] = []
    for child in node.children:
        if child.label not in groups:
            groups[child.label] = []
            order.append(child.label)
        groups[child.label].append(child)
    return [groups[label] for label in order]


def count_tree_tuples(tree: XMLTree) -> int:
    """Return the number of tree tuples of *tree* without materialising them.

    The count follows the product construction:
    ``count(leaf) = 1`` and
    ``count(n) = prod_over_groups( sum_over_children_in_group(count(child)) )``.
    """

    def count(node: XMLNode) -> int:
        if node.is_leaf:
            return 1
        total = 1
        for group in _group_children_by_label(node):
            total *= sum(count(child) for child in group)
        return total

    return count(tree.root)


def _tuple_node_id_sets(node: XMLNode, limit: Optional[int]) -> List[Set[int]]:
    """Return, for the subtree rooted at *node*, the list of node-identifier
    sets corresponding to each tuple of that subtree.

    ``limit`` bounds the number of sets produced at every level (and hence
    globally); ``None`` means unbounded.
    """
    if node.is_leaf:
        return [{node.node_id}]

    group_choices: List[List[Set[int]]] = []
    for group in _group_children_by_label(node):
        choices: List[Set[int]] = []
        for child in group:
            for child_set in _tuple_node_id_sets(child, limit):
                choices.append(child_set)
                if limit is not None and len(choices) >= limit:
                    break
            if limit is not None and len(choices) >= limit:
                break
        group_choices.append(choices)

    results: List[Set[int]] = []
    for combination in product(*group_choices):
        merged: Set[int] = {node.node_id}
        for child_set in combination:
            merged |= child_set
        results.append(merged)
        if limit is not None and len(results) >= limit:
            break
    return results


def extract_tree_tuples(
    tree: XMLTree, limit: Optional[int] = None
) -> List[TreeTuple]:
    """Extract the tree tuples of *tree* (paper Sec. 3.2).

    Parameters
    ----------
    tree:
        The source XML tree.
    limit:
        Optional upper bound on the number of tuples materialised; when the
        document would generate more, only the first ``limit`` (in the
        document-order product enumeration) are returned.

    Returns
    -------
    list of :class:`TreeTuple`
        Tuples preserve the node identifiers of the original tree and are
        assigned identifiers ``"<doc_id>#<i>"``.
    """
    doc_id = tree.doc_id or "doc"
    node_id_sets = _tuple_node_id_sets(tree.root, limit)
    tuples: List[TreeTuple] = []
    for index, id_set in enumerate(node_id_sets):
        subtree = tree.restricted_to(id_set)
        tuples.append(
            TreeTuple(tree=subtree, source_doc_id=doc_id, tuple_id=f"{doc_id}#{index}")
        )
    return tuples


def iter_tree_tuples(
    trees: Iterable[XMLTree], limit_per_tree: Optional[int] = None
) -> Iterator[TreeTuple]:
    """Yield the tree tuples of every tree in *trees* (collection ``T``)."""
    for tree in trees:
        yield from extract_tree_tuples(tree, limit=limit_per_tree)


def collection_tree_tuples(
    trees: Sequence[XMLTree], limit_per_tree: Optional[int] = None
) -> List[TreeTuple]:
    """Return the tree tuples of a collection as a list (``T`` in the paper)."""
    return list(iter_tree_tuples(trees, limit_per_tree=limit_per_tree))
