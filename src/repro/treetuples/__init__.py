"""Tree tuple decomposition of XML documents (paper Sec. 3.2)."""

from repro.treetuples.decompose import (
    collection_tree_tuples,
    count_tree_tuples,
    extract_tree_tuples,
    iter_tree_tuples,
)
from repro.treetuples.tupleobj import TreeTuple, is_maximal_tree_tuple, is_tree_tuple

__all__ = [
    "TreeTuple",
    "is_tree_tuple",
    "is_maximal_tree_tuple",
    "extract_tree_tuples",
    "iter_tree_tuples",
    "collection_tree_tuples",
    "count_tree_tuples",
]
