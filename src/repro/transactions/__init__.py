"""Transactional model of XML tree tuples (paper Sec. 3.3)."""

from repro.transactions.builder import (
    BuilderConfig,
    TransactionDatasetBuilder,
    build_dataset,
)
from repro.transactions.dataset import TransactionDataset
from repro.transactions.items import ItemDomain, TreeTupleItem, make_synthetic_item
from repro.transactions.transaction import Transaction, make_transaction, union_size

__all__ = [
    "TreeTupleItem",
    "ItemDomain",
    "make_synthetic_item",
    "Transaction",
    "make_transaction",
    "union_size",
    "TransactionDataset",
    "BuilderConfig",
    "TransactionDatasetBuilder",
    "build_dataset",
]
