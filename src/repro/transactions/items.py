"""Tree tuple items and the item domain (paper Sec. 3.3, Fig. 4).

An *XML tree tuple item* is a pair ``<p, A_tau(p)>`` made of a complete path
and its answer on a tree tuple.  The item embeds one distinct combination of
structure (the path) and content (the answer text, preprocessed into a TCU
vector) drawn from the original XML data.

Items are shared across transactions whenever the (path, answer) pair
coincides -- e.g. in the paper's running example the item for
``dblp.inproceedings.booktitle.S = 'KDD'`` is shared by all three tuples.
The :class:`ItemDomain` performs this de-duplication and assigns dense
integer identifiers.
"""

from __future__ import annotations

import functools
from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Tuple

from repro.text.vector import SparseVector
from repro.xmlmodel.paths import XMLPath


@dataclass(frozen=True)
class TreeTupleItem:
    """An immutable tree tuple item ``<path, answer>`` with its TCU vector.

    Attributes
    ----------
    item_id:
        Dense integer identifier within the owning :class:`ItemDomain`.
        Synthetic items created during representative computation (by
        ``conflateItems``) carry ``item_id = -1``.
    path:
        The complete path ``p`` of the item.
    answer:
        The raw answer text (attribute value or ``#PCDATA`` content).  For
        conflated items this is the concatenation of the merged answers.
    terms:
        The preprocessed index terms of the answer (the TCU).
    vector:
        The ttf.itf-weighted sparse TCU vector used by content similarity.
    """

    item_id: int
    path: XMLPath
    answer: str
    terms: Tuple[str, ...] = ()
    vector: SparseVector = field(default_factory=SparseVector)

    # ------------------------------------------------------------------ #
    @functools.cached_property
    def tag_path(self) -> XMLPath:
        """Return the maximal tag path of the item (path minus last step).

        Cached: similarity kernels access it millions of times per run.
        """
        return self.path.tag_path()

    @property
    def is_synthetic(self) -> bool:
        """True for items created by representative computation."""
        return self.item_id < 0

    def key(self) -> Tuple[XMLPath, str]:
        """Return the de-duplication key (path, answer)."""
        return (self.path, self.answer)

    def with_vector(self, vector: SparseVector) -> "TreeTupleItem":
        """Return a copy of the item carrying a different TCU vector."""
        return TreeTupleItem(
            item_id=self.item_id,
            path=self.path,
            answer=self.answer,
            terms=self.terms,
            vector=vector,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        preview = self.answer if len(self.answer) <= 24 else self.answer[:21] + "..."
        return f"Item(e{self.item_id}, {self.path}, {preview!r})"

    # Equality / hashing intentionally rely on (item_id, path, answer) so that
    # synthetic items with identical content compare equal while items from
    # the domain keep identity through their ids.
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, TreeTupleItem):
            return NotImplemented
        return (
            self.item_id == other.item_id
            and self.path == other.path
            and self.answer == other.answer
        )

    def __hash__(self) -> int:
        return hash((self.item_id, self.path, self.answer))


class ItemDomain:
    """The global item domain of a transaction dataset.

    Maps (path, answer) pairs to unique :class:`TreeTupleItem` objects with
    dense identifiers, mirroring the item table of the paper's Fig. 4(b).
    """

    def __init__(self) -> None:
        self._items: List[TreeTupleItem] = []
        self._by_key: Dict[Tuple[XMLPath, str], int] = {}

    # ------------------------------------------------------------------ #
    def intern(
        self,
        path: XMLPath,
        answer: str,
        terms: Tuple[str, ...] = (),
        vector: Optional[SparseVector] = None,
    ) -> TreeTupleItem:
        """Return the canonical item for (path, answer), creating it if new."""
        key = (path, answer)
        index = self._by_key.get(key)
        if index is not None:
            return self._items[index]
        item = TreeTupleItem(
            item_id=len(self._items),
            path=path,
            answer=answer,
            terms=tuple(terms),
            vector=vector if vector is not None else SparseVector(),
        )
        self._by_key[key] = item.item_id
        self._items.append(item)
        return item

    def replace(self, item: TreeTupleItem) -> None:
        """Replace the stored item with the same identifier (e.g. to attach a
        freshly computed TCU vector after corpus statistics are complete)."""
        if item.item_id < 0 or item.item_id >= len(self._items):
            raise KeyError(f"unknown item id: {item.item_id}")
        self._items[item.item_id] = item
        self._by_key[item.key()] = item.item_id

    def get(self, item_id: int) -> TreeTupleItem:
        """Return the item with the given identifier."""
        return self._items[item_id]

    def find(self, path: XMLPath, answer: str) -> Optional[TreeTupleItem]:
        """Return the item for (path, answer) or ``None`` when absent."""
        index = self._by_key.get((path, answer))
        return self._items[index] if index is not None else None

    def __len__(self) -> int:
        return len(self._items)

    def __iter__(self) -> Iterator[TreeTupleItem]:
        return iter(self._items)

    def items(self) -> List[TreeTupleItem]:
        """Return all items in identifier order."""
        return list(self._items)

    def distinct_paths(self) -> List[XMLPath]:
        """Return the distinct complete paths appearing in the domain."""
        seen = []
        seen_set = set()
        for item in self._items:
            if item.path not in seen_set:
                seen_set.add(item.path)
                seen.append(item.path)
        return seen


def make_synthetic_item(
    path: XMLPath,
    answer: str,
    terms: Iterable[str] = (),
    vector: Optional[SparseVector] = None,
) -> TreeTupleItem:
    """Create a synthetic (representative) item outside any domain."""
    return TreeTupleItem(
        item_id=-1,
        path=path,
        answer=answer,
        terms=tuple(terms),
        vector=vector if vector is not None else SparseVector(),
    )
