"""Transaction datasets: the collection ``S`` of XML transactions.

A :class:`TransactionDataset` bundles the transactions extracted from an XML
collection with the shared item domain, the corpus term statistics used for
ttf.itf weighting, and (optionally) one or more ground-truth labellings used
by the external cluster-validity measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple

from repro.text.weighting import CorpusTermStatistics
from repro.transactions.items import ItemDomain, TreeTupleItem
from repro.transactions.transaction import Transaction


@dataclass
class TransactionDataset:
    """The full transactional view of an XML document collection.

    Attributes
    ----------
    name:
        Human readable dataset name (e.g. ``"DBLP"``).
    transactions:
        The list of transactions (``S`` in the paper).
    item_domain:
        The shared item domain (Fig. 4(b)).
    statistics:
        The corpus term statistics used for ttf.itf weighting.
    labelings:
        Ground-truth labellings keyed by labelling name (``"content"``,
        ``"structure"``, ``"hybrid"``); each maps transaction identifiers to
        class labels.
    """

    name: str
    transactions: List[Transaction] = field(default_factory=list)
    item_domain: ItemDomain = field(default_factory=ItemDomain)
    statistics: Optional[CorpusTermStatistics] = None
    labelings: Dict[str, Dict[str, str]] = field(default_factory=dict)

    # ------------------------------------------------------------------ #
    # Container protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.transactions)

    def __iter__(self) -> Iterator[Transaction]:
        return iter(self.transactions)

    def __getitem__(self, index: int) -> Transaction:
        return self.transactions[index]

    # ------------------------------------------------------------------ #
    # Summary statistics (used by experiments and reports)
    # ------------------------------------------------------------------ #
    def transaction_count(self) -> int:
        return len(self.transactions)

    def item_count(self) -> int:
        """Return the number of distinct items in the domain."""
        return len(self.item_domain)

    def max_transaction_length(self) -> int:
        """Return ``|tr_max|``: the length of the longest transaction."""
        return max((len(tr) for tr in self.transactions), default=0)

    def max_tcu_size(self) -> int:
        """Return ``|u_max|``: the largest TCU vector dimensionality."""
        return max((tr.max_tcu_size() for tr in self.transactions), default=0)

    def vocabulary_size(self) -> int:
        """Return ``|V|``: the number of distinct index terms."""
        return len(self.statistics.vocabulary) if self.statistics else 0

    def document_ids(self) -> List[str]:
        """Return the distinct originating document identifiers, in order."""
        seen: Dict[str, None] = {}
        for transaction in self.transactions:
            if transaction.doc_id not in seen:
                seen[transaction.doc_id] = None
        return list(seen.keys())

    def summary(self) -> Dict[str, float]:
        """Return headline statistics comparable to the paper's Sec. 5.2."""
        return {
            "documents": len(self.document_ids()),
            "transactions": self.transaction_count(),
            "distinct_items": self.item_count(),
            "vocabulary": self.vocabulary_size(),
            "max_transaction_length": self.max_transaction_length(),
            "max_tcu_size": self.max_tcu_size(),
        }

    # ------------------------------------------------------------------ #
    # Labelings
    # ------------------------------------------------------------------ #
    def add_labeling(self, name: str, labels: Dict[str, str]) -> None:
        """Attach a ground-truth labelling keyed by transaction identifier."""
        self.labelings[name] = dict(labels)

    def labels_for(self, name: str) -> Dict[str, str]:
        """Return the labelling registered under *name*.

        Raises
        ------
        KeyError
            When no such labelling was registered.
        """
        return self.labelings[name]

    def classes_for(self, name: str) -> List[str]:
        """Return the sorted distinct class labels of a labelling."""
        return sorted(set(self.labelings[name].values()))

    def class_count(self, name: str) -> int:
        """Return the number of distinct classes of a labelling."""
        return len(set(self.labelings[name].values()))

    # ------------------------------------------------------------------ #
    # Slicing (used by data partitioning across peers)
    # ------------------------------------------------------------------ #
    def subset(self, transaction_ids: Iterable[str], name_suffix: str = "subset") -> "TransactionDataset":
        """Return a dataset restricted to the given transaction identifiers.

        The item domain, statistics and labelings are shared (not copied):
        the subset is a *view* suitable for assigning data to peers.
        """
        wanted = set(transaction_ids)
        picked = [tr for tr in self.transactions if tr.transaction_id in wanted]
        subset = TransactionDataset(
            name=f"{self.name}-{name_suffix}",
            transactions=picked,
            item_domain=self.item_domain,
            statistics=self.statistics,
            labelings=self.labelings,
        )
        return subset

    def split(self, chunks: Sequence[Sequence[Transaction]]) -> List["TransactionDataset"]:
        """Wrap pre-computed transaction chunks as shared-domain datasets."""
        result = []
        for index, chunk in enumerate(chunks):
            result.append(
                TransactionDataset(
                    name=f"{self.name}-part{index}",
                    transactions=list(chunk),
                    item_domain=self.item_domain,
                    statistics=self.statistics,
                    labelings=self.labelings,
                )
            )
        return result

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"TransactionDataset({self.name!r}, {len(self.transactions)} transactions, "
            f"{len(self.item_domain)} items)"
        )
