"""Building transaction datasets from XML document collections.

This module implements the preprocessing phase of Fig. 1(b): XML documents
are decomposed into tree tuples, every leaf of every tuple becomes a tree
tuple item, item TCUs are weighted with ttf.itf, and transactions are
assembled into a :class:`~repro.transactions.dataset.TransactionDataset`.

The construction is a two-pass process because ttf.itf weights need corpus
level statistics: the first pass registers every TCU with the
:class:`~repro.text.weighting.CorpusTermStatistics` accumulator; the second
pass materialises items and transactions with their weighted vectors.

Items are de-duplicated by (path, answer); since the ttf.itf weight of a
term depends on the tuple and document the TCU occurs in, the vector attached
to a shared item is the **average** of the vectors of its occurrences.  This
is the natural collapse of the paper's per-occurrence weights onto the shared
item table of Fig. 4(b) and it is covered by a dedicated unit test.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.text.preprocess import PreprocessingConfig, TextPreprocessor
from repro.text.vector import SparseVector, merge_vectors
from repro.text.weighting import CorpusTermStatistics, TtfItfWeighter
from repro.transactions.dataset import TransactionDataset
from repro.transactions.items import ItemDomain
from repro.transactions.transaction import Transaction, make_transaction
from repro.treetuples.decompose import extract_tree_tuples
from repro.treetuples.tupleobj import TreeTuple
from repro.xmlmodel.paths import XMLPath
from repro.xmlmodel.tree import XMLTree


@dataclass
class BuilderConfig:
    """Configuration of the XML-to-transactions pipeline."""

    #: Text preprocessing configuration applied to every TCU.
    preprocessing: PreprocessingConfig = field(default_factory=PreprocessingConfig)
    #: Upper bound on the number of tree tuples materialised per document
    #: (``None`` = unbounded); guards against combinatorial explosions in
    #: pathological documents.
    max_tuples_per_document: Optional[int] = None
    #: When True, transactions with no items (documents whose tuples carry no
    #: non-empty leaves) are dropped.
    drop_empty_transactions: bool = True


class TransactionDatasetBuilder:
    """Builds :class:`TransactionDataset` objects from XML trees."""

    def __init__(self, name: str, config: Optional[BuilderConfig] = None) -> None:
        self.name = name
        self.config = config or BuilderConfig()
        self._preprocessor = TextPreprocessor(self.config.preprocessing)

    # ------------------------------------------------------------------ #
    def build(
        self,
        trees: Sequence[XMLTree],
        doc_labels: Optional[Dict[str, Dict[str, str]]] = None,
    ) -> TransactionDataset:
        """Build the dataset for *trees*.

        Parameters
        ----------
        trees:
            The XML document collection.
        doc_labels:
            Optional ground-truth labellings **per document**: a mapping from
            labelling name to ``{doc_id: class label}``.  Labels are projected
            onto every transaction derived from the document, matching the
            paper's evaluation protocol (Sec. 5.3 operates on ``S``).
        """
        tuples = self._extract_tuples(trees)
        statistics, tuple_tcus = self._collect_statistics(tuples)
        dataset = self._assemble(tuples, statistics, tuple_tcus)
        if doc_labels:
            for labeling_name, per_doc in doc_labels.items():
                labels = {
                    transaction.transaction_id: per_doc[transaction.doc_id]
                    for transaction in dataset.transactions
                    if transaction.doc_id in per_doc
                }
                dataset.add_labeling(labeling_name, labels)
        return dataset

    # ------------------------------------------------------------------ #
    # Pass 0: tree tuple extraction
    # ------------------------------------------------------------------ #
    def _extract_tuples(self, trees: Sequence[XMLTree]) -> List[TreeTuple]:
        tuples: List[TreeTuple] = []
        for tree in trees:
            tuples.extend(
                extract_tree_tuples(tree, limit=self.config.max_tuples_per_document)
            )
        return tuples

    # ------------------------------------------------------------------ #
    # Pass 1: corpus statistics
    # ------------------------------------------------------------------ #
    def _collect_statistics(
        self, tuples: Sequence[TreeTuple]
    ) -> Tuple[CorpusTermStatistics, Dict[str, List[Tuple[XMLPath, str, Tuple[str, ...]]]]]:
        """Register every TCU and return (statistics, per-tuple TCU lists)."""
        statistics = CorpusTermStatistics()
        tuple_tcus: Dict[str, List[Tuple[XMLPath, str, Tuple[str, ...]]]] = {}
        for tree_tuple in tuples:
            tcus: List[Tuple[XMLPath, str, Tuple[str, ...]]] = []
            for path, answer in tree_tuple.as_pairs():
                terms = tuple(self._preprocessor.process(answer))
                statistics.add_tcu(tree_tuple.tuple_id, tree_tuple.source_doc_id, terms)
                tcus.append((path, answer, terms))
            tuple_tcus[tree_tuple.tuple_id] = tcus
        return statistics, tuple_tcus

    # ------------------------------------------------------------------ #
    # Pass 2: items, vectors and transactions
    # ------------------------------------------------------------------ #
    def _assemble(
        self,
        tuples: Sequence[TreeTuple],
        statistics: CorpusTermStatistics,
        tuple_tcus: Dict[str, List[Tuple[XMLPath, str, Tuple[str, ...]]]],
    ) -> TransactionDataset:
        weighter = TtfItfWeighter(statistics)
        domain = ItemDomain()
        # occurrence vectors per item id, averaged at the end
        occurrence_vectors: Dict[int, List[SparseVector]] = {}
        transactions: List[Transaction] = []

        for tree_tuple in tuples:
            items = []
            for path, answer, terms in tuple_tcus[tree_tuple.tuple_id]:
                item = domain.intern(path, answer, terms)
                vector = weighter.vector(
                    terms, tree_tuple.tuple_id, tree_tuple.source_doc_id
                )
                occurrence_vectors.setdefault(item.item_id, []).append(vector)
                items.append(item)
            if not items and self.config.drop_empty_transactions:
                continue
            transactions.append(
                make_transaction(
                    transaction_id=tree_tuple.tuple_id,
                    items=items,
                    doc_id=tree_tuple.source_doc_id,
                    tuple_id=tree_tuple.tuple_id,
                )
            )

        # Attach averaged vectors to the interned items, then rebuild the
        # transactions so they reference the weighted items.
        for item_id, vectors in occurrence_vectors.items():
            averaged = merge_vectors(vectors).scaled(1.0 / len(vectors))
            item = domain.get(item_id)
            domain.replace(item.with_vector(averaged))

        weighted_transactions = []
        for transaction in transactions:
            weighted_items = [domain.get(item.item_id) for item in transaction.items]
            weighted_transactions.append(transaction.with_items(weighted_items))

        return TransactionDataset(
            name=self.name,
            transactions=weighted_transactions,
            item_domain=domain,
            statistics=statistics,
        )


def build_dataset(
    name: str,
    trees: Sequence[XMLTree],
    doc_labels: Optional[Dict[str, Dict[str, str]]] = None,
    config: Optional[BuilderConfig] = None,
) -> TransactionDataset:
    """Convenience wrapper around :class:`TransactionDatasetBuilder`."""
    return TransactionDatasetBuilder(name, config=config).build(trees, doc_labels=doc_labels)
