"""XML transactions (paper Sec. 3.3).

A transaction ``I_tau = { <p, A_tau(p)> | p in P_tau }`` is the set of tree
tuple items associated to the leaves of a tree tuple.  Cluster
representatives produced by the CXK-means functions are also transactions
(made of synthetic, conflated items), so the class is deliberately agnostic
about where its items come from.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from repro.transactions.items import TreeTupleItem
from repro.xmlmodel.paths import XMLPath


@dataclass(frozen=True)
class Transaction:
    """An immutable set of tree tuple items with provenance metadata.

    Attributes
    ----------
    transaction_id:
        Unique identifier within the dataset (``"<doc_id>#<tuple index>"``
        for transactions derived from tree tuples; representatives use a
        ``"rep:..."`` prefix).
    items:
        The tree tuple items, stored as a tuple in path order for determinism.
    doc_id / tuple_id:
        Provenance of the transaction; empty strings for representatives.
    """

    transaction_id: str
    items: Tuple[TreeTupleItem, ...]
    doc_id: str = ""
    tuple_id: str = ""

    # ------------------------------------------------------------------ #
    # Container protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.items)

    def __iter__(self) -> Iterator[TreeTupleItem]:
        return iter(self.items)

    def __contains__(self, item: TreeTupleItem) -> bool:
        return item in self.items

    def is_empty(self) -> bool:
        return not self.items

    # ------------------------------------------------------------------ #
    # Views
    # ------------------------------------------------------------------ #
    def item_ids(self) -> Tuple[int, ...]:
        """Return the identifiers of the (non-synthetic) items."""
        return tuple(item.item_id for item in self.items)

    def item_set(self) -> Set[TreeTupleItem]:
        """Return the items as a set (used by union/intersection helpers)."""
        return set(self.items)

    def paths(self) -> Set[XMLPath]:
        """Return the set of complete paths covered by the transaction."""
        return {item.path for item in self.items}

    def tag_paths(self) -> Set[XMLPath]:
        """Return the set of maximal tag paths covered by the transaction."""
        return {item.tag_path for item in self.items}

    def find_by_path(self, path: XMLPath) -> List[TreeTupleItem]:
        """Return the items whose complete path equals *path*."""
        return [item for item in self.items if item.path == path]

    def max_tcu_size(self) -> int:
        """Return the largest TCU vector dimensionality among the items."""
        return max((len(item.vector) for item in self.items), default=0)

    # ------------------------------------------------------------------ #
    # Derivation
    # ------------------------------------------------------------------ #
    def with_items(self, items: Sequence[TreeTupleItem]) -> "Transaction":
        """Return a copy of the transaction with a different item set."""
        return Transaction(
            transaction_id=self.transaction_id,
            items=tuple(items),
            doc_id=self.doc_id,
            tuple_id=self.tuple_id,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Transaction({self.transaction_id}, {len(self.items)} items)"


def union_size(tr1: Transaction, tr2: Transaction) -> int:
    """Return ``|tr1 ∪ tr2|`` counting distinct items across both transactions.

    Items compare by (id, path, answer); synthetic items from representatives
    therefore merge whenever their conflated content coincides.
    """
    return len(tr1.item_set() | tr2.item_set())


def make_transaction(
    transaction_id: str,
    items: Iterable[TreeTupleItem],
    doc_id: str = "",
    tuple_id: str = "",
    sort_items: bool = True,
) -> Transaction:
    """Build a :class:`Transaction`, sorting items by path for determinism."""
    items = list(items)
    if sort_items:
        items.sort(key=lambda item: (item.path, item.answer))
    return Transaction(
        transaction_id=transaction_id,
        items=tuple(items),
        doc_id=doc_id,
        tuple_id=tuple_id,
    )
