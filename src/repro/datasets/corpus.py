"""Topic vocabularies used by the synthetic corpus generators.

The paper evaluates on four real XML collections (DBLP, IEEE/INEX,
Shakespeare, Wikipedia/INEX) that are not redistributable here; the
reproduction generates synthetic collections whose *content* classes are
driven by the per-topic vocabularies below.  Documents of a topical class
draw most of their terms from the class vocabulary plus a shared filler
vocabulary, which creates the intra-class cohesion / inter-class separation
the clustering algorithms are supposed to discover.

Vocabularies are plain Python lists so experiments remain fully
deterministic and dependency-free.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

#: Generic academic / encyclopedic filler terms shared by every topic.
FILLER_WORDS: List[str] = [
    "approach", "analysis", "method", "result", "study", "evaluation",
    "system", "model", "process", "design", "development", "application",
    "framework", "technique", "problem", "solution", "performance",
    "experiment", "overview", "introduction", "discussion", "section",
    "example", "definition", "property", "structure", "function", "value",
    "measure", "comparison", "history", "theory", "practice", "review",
]

#: Topic name -> characteristic vocabulary.  Topics cover the union of the
#: classes used by the four synthetic corpora.
TOPICS: Dict[str, List[str]] = {
    # ---- DBLP topical classes (Sec. 5.2: six topic classes) -------------- #
    "multimedia": [
        "multimedia", "video", "audio", "image", "streaming", "codec",
        "compression", "rendering", "animation", "media", "visual", "frame",
        "pixel", "color", "texture", "synchronization", "broadcast", "scene",
        "capture", "playback", "encoding", "resolution",
    ],
    "logic_programming": [
        "logic", "prolog", "predicate", "clause", "resolution", "unification",
        "datalog", "deduction", "horn", "semantics", "fixpoint", "inference",
        "rule", "negation", "stratified", "answer", "program", "declarative",
        "constraint", "grounding", "herbrand", "query",
    ],
    "web_adaptive": [
        "web", "adaptive", "hypermedia", "personalization", "user", "profile",
        "recommendation", "navigation", "browser", "hypertext", "link",
        "portal", "session", "click", "page", "adaptation", "preference",
        "usability", "interface", "content", "site", "surfing",
    ],
    "knowledge_systems": [
        "knowledge", "ontology", "reasoning", "expert", "agent", "semantic",
        "representation", "inference", "taxonomy", "concept", "frame",
        "description", "rdf", "owl", "rule", "acquisition", "engineering",
        "base", "intelligent", "decision", "support", "domain",
    ],
    "software_engineering": [
        "software", "engineering", "requirement", "specification", "testing",
        "architecture", "component", "refactoring", "maintenance", "agile",
        "pattern", "uml", "module", "verification", "validation", "release",
        "bug", "defect", "repository", "versioning", "deployment", "quality",
    ],
    "formal_languages": [
        "automata", "grammar", "language", "regular", "context", "free",
        "parsing", "finite", "state", "transducer", "alphabet", "string",
        "decidability", "complexity", "turing", "machine", "acceptance",
        "derivation", "production", "pumping", "lemma", "recognizer",
    ],
    # ---- IEEE topical classes (eight classes) ----------------------------- #
    "computer": [
        "computer", "processor", "architecture", "instruction", "pipeline",
        "cache", "memory", "register", "chip", "circuit", "microprocessor",
        "throughput", "latency", "benchmark", "simulation", "superscalar",
        "branch", "prediction", "fetch", "execution", "cycle", "hardware",
    ],
    "graphics": [
        "graphics", "rendering", "shader", "polygon", "mesh", "raster",
        "geometry", "lighting", "shadow", "texture", "vertex", "surface",
        "modeling", "animation", "visualization", "camera", "projection",
        "illumination", "ray", "tracing", "volume", "scene",
    ],
    "hardware": [
        "hardware", "vlsi", "fpga", "gate", "transistor", "layout",
        "synthesis", "verification", "logic", "circuit", "clock", "signal",
        "routing", "placement", "fabrication", "silicon", "voltage", "power",
        "timing", "netlist", "asic", "embedded",
    ],
    "artificial_intelligence": [
        "learning", "neural", "network", "classification", "training",
        "feature", "clustering", "regression", "bayesian", "reinforcement",
        "genetic", "optimization", "heuristic", "search", "planning",
        "perception", "recognition", "intelligence", "supervised", "kernel",
        "gradient", "agent",
    ],
    "internet": [
        "internet", "protocol", "routing", "tcp", "packet", "router",
        "bandwidth", "congestion", "http", "dns", "address", "gateway",
        "topology", "traffic", "latency", "peer", "overlay", "socket",
        "firewall", "multicast", "datagram", "service",
    ],
    "mobile": [
        "mobile", "wireless", "cellular", "handover", "antenna", "spectrum",
        "bluetooth", "roaming", "basestation", "channel", "fading", "signal",
        "smartphone", "battery", "location", "gsm", "wifi", "sensor",
        "adhoc", "energy", "coverage", "mobility",
    ],
    "parallel": [
        "parallel", "distributed", "cluster", "thread", "synchronization",
        "speedup", "scalability", "mpi", "openmp", "scheduling", "load",
        "balancing", "multiprocessor", "shared", "message", "passing",
        "barrier", "lock", "concurrency", "grid", "partition", "workload",
    ],
    "security": [
        "security", "encryption", "cryptography", "authentication", "key",
        "attack", "intrusion", "vulnerability", "malware", "firewall",
        "privacy", "signature", "certificate", "hash", "cipher", "protocol",
        "access", "control", "threat", "detection", "trust", "forensics",
    ],
    # ---- Shakespeare content classes (five plays) ------------------------- #
    "hamlet": [
        "hamlet", "denmark", "elsinore", "ghost", "ophelia", "claudius",
        "gertrude", "polonius", "horatio", "laertes", "prince", "madness",
        "revenge", "yorick", "rosencrantz", "guildenstern", "soliloquy",
        "poison", "duel", "castle", "king", "queen",
    ],
    "macbeth": [
        "macbeth", "scotland", "witches", "banquo", "duncan", "thane",
        "cawdor", "dunsinane", "birnam", "lady", "dagger", "prophecy",
        "macduff", "fleance", "murder", "crown", "sleep", "blood",
        "ambition", "forest", "battle", "spirits",
    ],
    "othello": [
        "othello", "venice", "iago", "desdemona", "cassio", "cyprus",
        "moor", "handkerchief", "jealousy", "roderigo", "emilia", "brabantio",
        "lieutenant", "ensign", "senate", "turk", "deception", "honest",
        "strawberry", "willow", "smother", "general",
    ],
    "henry_vi": [
        "henry", "england", "france", "york", "lancaster", "talbot",
        "margaret", "somerset", "gloucester", "warwick", "joan", "rouen",
        "crown", "rose", "rebellion", "cade", "suffolk", "plantagenet",
        "battle", "regent", "dauphin", "throne",
    ],
    "henry_viii": [
        "henry", "wolsey", "katherine", "anne", "boleyn", "buckingham",
        "cranmer", "cardinal", "divorce", "court", "trial", "coronation",
        "chamberlain", "norfolk", "ambassador", "ceremony", "masque",
        "palace", "council", "archbishop", "christening", "prophecy",
    ],
    # ---- Additional Wikipedia portals (21 thematic categories total) ------ #
    "astronomy": [
        "astronomy", "galaxy", "telescope", "planet", "star", "orbit",
        "nebula", "cosmology", "asteroid", "comet", "supernova", "stellar",
        "luminosity", "spectrum", "observatory", "eclipse", "satellite",
        "universe", "redshift", "gravity", "solar", "lunar",
    ],
    "biology": [
        "biology", "cell", "gene", "protein", "organism", "evolution",
        "species", "dna", "enzyme", "membrane", "chromosome", "bacteria",
        "ecology", "mutation", "genome", "tissue", "photosynthesis",
        "metabolism", "taxonomy", "habitat", "molecular", "physiology",
    ],
    "chemistry": [
        "chemistry", "molecule", "atom", "reaction", "compound", "element",
        "bond", "acid", "base", "catalyst", "electron", "ion", "oxidation",
        "polymer", "solvent", "synthesis", "organic", "crystal", "periodic",
        "valence", "isotope", "titration",
    ],
    "economics": [
        "economics", "market", "price", "inflation", "trade", "demand",
        "supply", "currency", "investment", "monetary", "fiscal", "growth",
        "unemployment", "capital", "labor", "tax", "equilibrium", "interest",
        "gdp", "export", "import", "policy",
    ],
    "geography": [
        "geography", "continent", "river", "mountain", "climate", "ocean",
        "desert", "plateau", "island", "population", "region", "border",
        "terrain", "latitude", "longitude", "glacier", "valley", "peninsula",
        "rainfall", "erosion", "volcano", "delta",
    ],
    "history": [
        "history", "empire", "war", "revolution", "dynasty", "treaty",
        "medieval", "ancient", "colonial", "monarchy", "civilization",
        "conquest", "republic", "reform", "archive", "chronicle", "heritage",
        "century", "kingdom", "siege", "alliance", "independence",
    ],
    "literature": [
        "literature", "novel", "poetry", "author", "narrative", "fiction",
        "drama", "prose", "verse", "metaphor", "chapter", "character",
        "plot", "genre", "publisher", "manuscript", "criticism", "romantic",
        "satire", "tragedy", "comedy", "anthology",
    ],
    "mathematics": [
        "mathematics", "theorem", "proof", "algebra", "geometry", "calculus",
        "topology", "integer", "polynomial", "matrix", "vector", "function",
        "derivative", "integral", "probability", "statistics", "conjecture",
        "axiom", "lemma", "manifold", "equation", "symmetry",
    ],
    "medicine": [
        "medicine", "disease", "patient", "treatment", "diagnosis", "therapy",
        "clinical", "surgery", "infection", "vaccine", "symptom", "syndrome",
        "hospital", "pharmacology", "dosage", "anatomy", "cardiac", "tumor",
        "immune", "antibiotic", "epidemiology", "pathology",
    ],
    "music": [
        "music", "melody", "harmony", "rhythm", "orchestra", "symphony",
        "composer", "concerto", "guitar", "piano", "chord", "tempo",
        "soprano", "album", "concert", "opera", "ballad", "acoustic",
        "percussion", "choir", "sonata", "lyrics",
    ],
    "philosophy": [
        "philosophy", "ethics", "metaphysics", "epistemology", "logic",
        "existence", "consciousness", "morality", "rationalism", "empiricism",
        "dialectic", "phenomenology", "ontology", "virtue", "justice",
        "skepticism", "idealism", "pragmatism", "argument", "premise",
        "truth", "reason",
    ],
    "politics": [
        "politics", "government", "election", "parliament", "democracy",
        "constitution", "legislation", "senate", "party", "vote", "campaign",
        "policy", "minister", "diplomacy", "referendum", "coalition",
        "congress", "judiciary", "amendment", "governance", "sovereignty",
        "federal",
    ],
    "sports": [
        "sport", "football", "tournament", "championship", "league", "match",
        "player", "team", "coach", "goal", "olympic", "stadium", "athlete",
        "score", "season", "cricket", "tennis", "marathon", "medal",
        "referee", "fixture", "transfer",
    ],
}


def topic_names() -> List[str]:
    """Return all topic names in deterministic order."""
    return list(TOPICS.keys())


def vocabulary_for(topic: str) -> List[str]:
    """Return the vocabulary of *topic* (raises ``KeyError`` when unknown)."""
    return TOPICS[topic]


def topics_subset(names: Sequence[str]) -> Dict[str, List[str]]:
    """Return the vocabularies of a subset of topics, preserving order."""
    return {name: TOPICS[name] for name in names}


#: Family names used for synthetic author / character names.
SURNAMES: List[str] = [
    "Smith", "Mueller", "Rossi", "Tanaka", "Garcia", "Kumar", "Novak",
    "Silva", "Petrov", "Nielsen", "Dubois", "Costa", "Haddad", "Olsen",
    "Marino", "Fischer", "Moreau", "Sato", "Lindgren", "Horvat", "Keller",
    "Vargas", "Baker", "Romano", "Stewart", "Janssen", "Weber", "Fontaine",
]

#: Given names used for synthetic author / character names.
GIVEN_NAMES: List[str] = [
    "Ada", "Boris", "Carla", "Diego", "Elena", "Farid", "Greta", "Hugo",
    "Irene", "Jonas", "Karin", "Luca", "Mara", "Nikolai", "Olga", "Pavel",
    "Quinn", "Rosa", "Stefan", "Tara", "Ulrich", "Vera", "Walter", "Xenia",
]

#: Journal / conference name fragments for bibliographic corpora.
VENUE_WORDS: List[str] = [
    "Journal", "Transactions", "Conference", "Symposium", "Workshop",
    "Letters", "Review", "Bulletin", "Proceedings", "Annals",
]
