"""Synthetic Shakespeare-like corpus of XML-encoded plays.

The paper's Shakespeare collection contains seven long plays (the three parts
of Henry VI, Henry VIII, Hamlet, Macbeth and Othello).  The ground truth
distinguishes three structural classes -- based on the presence or absence of
the discriminatory paths ``personae.pgroup``, ``act.prologue`` and
``act.epilogue`` -- five content classes (the plays, with the Henry VI parts
collapsed into one class) and twelve hybrid classes.

The generator emits seven documents with the same element layout and the
paper's structural-marker combinations; every speech concatenates its lines
into a single ``line`` element, as done by the paper's preprocessing.
Because speeches, scenes and acts repeat, each play decomposes into many tree
tuples, reproducing the long-document / few-documents character of the
original collection.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from repro.datasets.generator import SyntheticCorpus, TextSampler
from repro.xmlmodel.tree import XMLTree, XMLTreeBuilder

#: (document id, content class, structural class) for each of the 7 plays.
#: Structural classes encode which discriminatory paths the play contains:
#:  * ``pgroup``   -- personae contains a pgroup element
#:  * ``prologue`` -- acts open with a prologue
#:  * ``plain``    -- neither marker (epilogues only)
PLAYS: List[Tuple[str, str, str]] = [
    ("henry-vi-part1", "henry_vi", "pgroup"),
    ("henry-vi-part2", "henry_vi", "pgroup"),
    ("henry-vi-part3", "henry_vi", "plain"),
    ("henry-viii", "henry_viii", "prologue"),
    ("hamlet", "hamlet", "pgroup"),
    ("macbeth", "macbeth", "plain"),
    ("othello", "othello", "prologue"),
]

SHAKESPEARE_CONTENT_CLASSES: List[str] = [
    "henry_vi", "henry_viii", "hamlet", "macbeth", "othello",
]
SHAKESPEARE_STRUCTURE_CLASSES: List[str] = ["pgroup", "prologue", "plain"]
#: The paper groups tree tuples into 12 classes for structure/content-driven
#: clustering; here the hybrid label is the (structure, content) combination,
#: of which the seven plays produce exactly the ones listed below.
SHAKESPEARE_HYBRID_CLASSES: List[str] = sorted(
    {f"{structure}|{content}" for _, content, structure in PLAYS}
)


def _build_play(
    sampler: TextSampler,
    doc_id: str,
    topic: str,
    structure_class: str,
    acts: int,
    scenes_per_act: int,
    speeches_per_scene: int,
    personas: int,
) -> XMLTree:
    rng = sampler.rng
    builder = XMLTreeBuilder(doc_id=doc_id)
    builder.start("play")
    builder.element("title", sampler.title(topic, min_words=3, max_words=6))
    builder.start("personae")
    for _ in range(personas):
        builder.element("persona", sampler.person_name())
    if structure_class == "pgroup":
        builder.start("pgroup")
        builder.element("persona", sampler.person_name())
        builder.element("grpdescr", sampler.sentence(topic, 4))
        builder.end()
    builder.end()

    for act_index in range(acts):
        builder.start("act")
        builder.element("acttitle", f"ACT {act_index + 1}")
        if structure_class == "prologue" and act_index == 0:
            builder.start("prologue")
            builder.element("speech", sampler.paragraph(topic, min_words=15, max_words=25))
            builder.end()
        for scene_index in range(scenes_per_act):
            builder.start("scene")
            builder.element("scenetitle", f"SCENE {scene_index + 1}. {sampler.sentence(topic, 3)}")
            for _ in range(speeches_per_scene):
                builder.start("speech")
                builder.element("speaker", sampler.person_name().split()[0].upper())
                builder.element("line", sampler.paragraph(topic, min_words=12, max_words=30))
                builder.end()
            builder.end()
        if structure_class == "plain" and act_index == acts - 1:
            builder.start("epilogue")
            builder.element("speech", sampler.paragraph(topic, min_words=12, max_words=20))
            builder.end()
        builder.end()
    builder.end()
    return builder.finish()


def generate_shakespeare(
    seed: int = 0,
    acts: int = 2,
    scenes_per_act: int = 2,
    speeches_per_scene: int = 2,
    personas: int = 2,
    topic_ratio: float = 0.75,
) -> SyntheticCorpus:
    """Generate the seven-play synthetic Shakespeare corpus.

    The ``acts`` / ``scenes_per_act`` / ``speeches_per_scene`` / ``personas``
    knobs control the number of tree tuples per play (the tuple count is
    roughly ``personas * acts * scenes * speeches``), so experiments can trade
    corpus size for runtime without changing the class structure.
    """
    rng = random.Random(seed)
    sampler = TextSampler(rng, topic_ratio=topic_ratio)

    trees: List[XMLTree] = []
    structure_labels: Dict[str, str] = {}
    content_labels: Dict[str, str] = {}
    hybrid_labels: Dict[str, str] = {}

    for doc_id, topic, structure_class in PLAYS:
        tree = _build_play(
            sampler,
            doc_id,
            topic,
            structure_class,
            acts=acts,
            scenes_per_act=scenes_per_act,
            speeches_per_scene=speeches_per_scene,
            personas=personas,
        )
        trees.append(tree)
        structure_labels[doc_id] = structure_class
        content_labels[doc_id] = topic
        hybrid_labels[doc_id] = f"{structure_class}|{topic}"

    return SyntheticCorpus(
        name="Shakespeare",
        trees=trees,
        doc_labels={
            "structure": structure_labels,
            "content": content_labels,
            "hybrid": hybrid_labels,
        },
        class_counts={
            "structure": len(SHAKESPEARE_STRUCTURE_CLASSES),
            "content": len(SHAKESPEARE_CONTENT_CLASSES),
            "hybrid": len(SHAKESPEARE_HYBRID_CLASSES),
        },
    )
