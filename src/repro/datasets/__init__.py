"""Synthetic re-creations of the paper's four evaluation corpora."""

from repro.datasets.corpus import (
    FILLER_WORDS,
    GIVEN_NAMES,
    SURNAMES,
    TOPICS,
    topic_names,
    vocabulary_for,
)
from repro.datasets.dblp import DBLP_CATEGORIES, DBLP_TOPICS, generate_dblp
from repro.datasets.generator import SyntheticCorpus, TextSampler, spread_classes
from repro.datasets.ieee import IEEE_CATEGORIES, IEEE_TOPICS, generate_ieee
from repro.datasets.registry import (
    DATASET_NAMES,
    CorpusProfile,
    cluster_count,
    get_corpus,
    get_dataset,
    profile,
)
from repro.datasets.shakespeare import (
    PLAYS,
    SHAKESPEARE_CONTENT_CLASSES,
    SHAKESPEARE_STRUCTURE_CLASSES,
    generate_shakespeare,
)
from repro.datasets.wikipedia import WIKIPEDIA_TOPICS, generate_wikipedia

__all__ = [
    "TOPICS",
    "FILLER_WORDS",
    "SURNAMES",
    "GIVEN_NAMES",
    "topic_names",
    "vocabulary_for",
    "SyntheticCorpus",
    "TextSampler",
    "spread_classes",
    "generate_dblp",
    "DBLP_TOPICS",
    "DBLP_CATEGORIES",
    "generate_ieee",
    "IEEE_TOPICS",
    "IEEE_CATEGORIES",
    "generate_shakespeare",
    "PLAYS",
    "SHAKESPEARE_CONTENT_CLASSES",
    "SHAKESPEARE_STRUCTURE_CLASSES",
    "generate_wikipedia",
    "WIKIPEDIA_TOPICS",
    "DATASET_NAMES",
    "CorpusProfile",
    "profile",
    "get_corpus",
    "get_dataset",
    "cluster_count",
]
