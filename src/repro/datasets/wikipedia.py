"""Synthetic Wikipedia/INEX-like encyclopedic corpus.

The Wikipedia XML Corpus subset used by the paper contains 10000 long
articles organised into 21 thematic categories (one per Wikipedia portal).
Structural differences between articles are negligible, so the paper uses
this collection mainly for content-driven clustering.  The generator mirrors
that profile: every document follows the same ``article`` layout and only the
textual content is topic-specific; the ``structure`` labelling is therefore
degenerate (a single class) and the ``hybrid`` labelling coincides with the
content labelling.
"""

from __future__ import annotations

import random
from typing import Dict, List

from repro.datasets.generator import SyntheticCorpus, TextSampler, spread_classes
from repro.xmlmodel.tree import XMLTree, XMLTreeBuilder

#: The 21 thematic categories (Wikipedia portals) used for the ground truth.
WIKIPEDIA_TOPICS: List[str] = [
    "astronomy", "biology", "chemistry", "economics", "geography", "history",
    "literature", "mathematics", "medicine", "music", "philosophy",
    "politics", "sports", "computer", "internet", "security",
    "artificial_intelligence", "mobile", "multimedia", "software_engineering",
    "parallel",
]


def _build_article(
    builder: XMLTreeBuilder, sampler: TextSampler, topic: str, index: int
) -> None:
    rng = sampler.rng
    builder.start("article")
    builder.attribute("id", str(100000 + index))
    builder.element("name", sampler.title(topic, min_words=2, max_words=5))
    builder.start("body")
    builder.element("template", topic.replace("_", " "))
    for _ in range(rng.randint(2, 3)):
        builder.start("section")
        builder.element("title", sampler.title(topic, min_words=2, max_words=4))
        builder.element("p", sampler.paragraph(topic, min_words=30, max_words=60))
        builder.end()
    builder.end()
    builder.start("categories")
    builder.element("category", topic.replace("_", " "))
    builder.end()
    builder.end()


def generate_wikipedia(
    num_documents: int = 105,
    seed: int = 0,
    topic_ratio: float = 0.7,
    topics: List[str] = None,
) -> SyntheticCorpus:
    """Generate a synthetic Wikipedia-like corpus.

    Parameters
    ----------
    num_documents:
        Number of articles; the default of 105 gives five documents per
        thematic category.
    topics:
        Optional restriction to a subset of the 21 categories (useful for
        small smoke tests).
    """
    rng = random.Random(seed)
    sampler = TextSampler(rng, topic_ratio=topic_ratio)
    categories = list(topics) if topics else list(WIKIPEDIA_TOPICS)

    assignments = spread_classes(num_documents, categories, rng)

    trees: List[XMLTree] = []
    content_labels: Dict[str, str] = {}
    structure_labels: Dict[str, str] = {}
    hybrid_labels: Dict[str, str] = {}

    for index, topic in enumerate(assignments):
        doc_id = f"wiki-{index:05d}"
        builder = XMLTreeBuilder(doc_id=doc_id)
        _build_article(builder, sampler, topic, index)
        trees.append(builder.finish())
        content_labels[doc_id] = topic
        structure_labels[doc_id] = "article"
        hybrid_labels[doc_id] = topic

    return SyntheticCorpus(
        name="Wikipedia",
        trees=trees,
        doc_labels={
            "structure": structure_labels,
            "content": content_labels,
            "hybrid": hybrid_labels,
        },
        class_counts={
            "structure": 1,
            "content": len(categories),
            "hybrid": len(categories),
        },
    )
