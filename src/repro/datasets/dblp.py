"""Synthetic DBLP-like bibliographic corpus.

The real DBLP subset used by the paper contains 3000 bibliographic records
spanning four structural categories (``article``, ``inproceedings``,
``book``, ``incollection``), six topical classes and sixteen hybrid
(structure + content) classes, yielding 5884 transactions.  This generator
reproduces that profile at a configurable scale: each document is one
bibliographic record whose element layout depends on its structural category
and whose text fields are flavoured by its topical class.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from repro.datasets.generator import SyntheticCorpus, TextSampler, spread_classes
from repro.xmlmodel.tree import XMLTree, XMLTreeBuilder

#: The six DBLP topical classes used by the paper (Sec. 5.2).
DBLP_TOPICS: List[str] = [
    "multimedia",
    "logic_programming",
    "web_adaptive",
    "knowledge_systems",
    "software_engineering",
    "formal_languages",
]

#: The four structural categories of the paper's DBLP subset.
DBLP_CATEGORIES: List[str] = ["article", "inproceedings", "book", "incollection"]

#: Hybrid (structure, topic) combinations; exactly sixteen classes as in the
#: paper: articles and conference papers span every topic, books and book
#: chapters are limited to two topics each.
DBLP_HYBRID_COMBOS: List[Tuple[str, str]] = (
    [("article", topic) for topic in DBLP_TOPICS]
    + [("inproceedings", topic) for topic in DBLP_TOPICS]
    + [("book", "software_engineering"), ("book", "formal_languages")]
    + [("incollection", "multimedia"), ("incollection", "knowledge_systems")]
)


def _record_key(category: str, topic: str, index: int) -> str:
    prefix = {"article": "journals", "inproceedings": "conf", "book": "books",
              "incollection": "books"}[category]
    return f"{prefix}/{topic[:4]}/rec{index}"


def _build_article(builder: XMLTreeBuilder, sampler: TextSampler, topic: str, index: int) -> None:
    builder.start("article")
    builder.attribute("key", _record_key("article", topic, index))
    for _ in range(sampler.rng.randint(1, 3)):
        builder.element("author", sampler.person_name())
    builder.element("title", sampler.title(topic))
    builder.element("year", sampler.year())
    builder.element("journal", f"{sampler.rng.choice(['Journal', 'Transactions'])} of {sampler.sentence(topic, 2)}")
    builder.element("volume", str(sampler.rng.randint(1, 40)))
    builder.element("pages", f"{sampler.rng.randint(1, 400)}-{sampler.rng.randint(401, 800)}")
    builder.end()


def _build_inproceedings(builder: XMLTreeBuilder, sampler: TextSampler, topic: str, index: int) -> None:
    builder.start("inproceedings")
    builder.attribute("key", _record_key("inproceedings", topic, index))
    for _ in range(sampler.rng.randint(1, 3)):
        builder.element("author", sampler.person_name())
    builder.element("title", sampler.title(topic))
    builder.element("year", sampler.year())
    builder.element("booktitle", f"Proceedings of the {sampler.sentence(topic, 2)} Conference")
    builder.element("pages", f"{sampler.rng.randint(1, 400)}-{sampler.rng.randint(401, 800)}")
    builder.end()


def _build_book(builder: XMLTreeBuilder, sampler: TextSampler, topic: str, index: int) -> None:
    builder.start("book")
    builder.attribute("key", _record_key("book", topic, index))
    builder.element("author", sampler.person_name())
    builder.element("title", sampler.title(topic, min_words=5, max_words=10))
    builder.element("year", sampler.year())
    builder.element("publisher", f"{sampler.rng.choice(['Springer', 'Elsevier', 'Wiley', 'Academic'])} Press")
    builder.element("isbn", f"978-{sampler.rng.randint(0, 9)}-{sampler.rng.randint(1000, 9999)}-{sampler.rng.randint(1000, 9999)}-{sampler.rng.randint(0, 9)}")
    builder.end()


def _build_incollection(builder: XMLTreeBuilder, sampler: TextSampler, topic: str, index: int) -> None:
    builder.start("incollection")
    builder.attribute("key", _record_key("incollection", topic, index))
    for _ in range(sampler.rng.randint(1, 2)):
        builder.element("author", sampler.person_name())
    builder.element("title", sampler.title(topic))
    builder.element("year", sampler.year())
    builder.element("booktitle", f"Handbook of {sampler.sentence(topic, 2)}")
    builder.element("chapter", str(sampler.rng.randint(1, 25)))
    builder.element("publisher", f"{sampler.rng.choice(['Springer', 'CRC', 'MIT'])} Press")
    builder.end()


_BUILDERS = {
    "article": _build_article,
    "inproceedings": _build_inproceedings,
    "book": _build_book,
    "incollection": _build_incollection,
}


def generate_dblp(
    num_documents: int = 120,
    seed: int = 0,
    topic_ratio: float = 0.75,
) -> SyntheticCorpus:
    """Generate a synthetic DBLP-like corpus.

    Parameters
    ----------
    num_documents:
        Number of bibliographic records (each record is one XML document
        rooted at ``dblp``; with 1-3 authors per record the corpus yields
        roughly twice as many transactions as documents, matching the real
        collection's ratio).
    seed:
        Seed of the deterministic pseudo-random generator.
    topic_ratio:
        Fraction of topical (vs. filler) words in text fields.
    """
    rng = random.Random(seed)
    sampler = TextSampler(rng, topic_ratio=topic_ratio)

    combos = spread_classes(
        num_documents, [f"{cat}|{topic}" for cat, topic in DBLP_HYBRID_COMBOS], rng
    )

    trees: List[XMLTree] = []
    structure_labels: Dict[str, str] = {}
    content_labels: Dict[str, str] = {}
    hybrid_labels: Dict[str, str] = {}

    for index, combo in enumerate(combos):
        category, topic = combo.split("|")
        doc_id = f"dblp-{index:05d}"
        builder = XMLTreeBuilder(doc_id=doc_id)
        builder.start("dblp")
        _BUILDERS[category](builder, sampler, topic, index)
        builder.end()
        trees.append(builder.finish())
        structure_labels[doc_id] = category
        content_labels[doc_id] = topic
        hybrid_labels[doc_id] = combo

    return SyntheticCorpus(
        name="DBLP",
        trees=trees,
        doc_labels={
            "structure": structure_labels,
            "content": content_labels,
            "hybrid": hybrid_labels,
        },
        class_counts={
            "structure": len(DBLP_CATEGORIES),
            "content": len(DBLP_TOPICS),
            "hybrid": len(DBLP_HYBRID_COMBOS),
        },
    )
