"""Shared machinery for the synthetic XML corpus generators.

Every corpus generator produces a :class:`SyntheticCorpus`: a list of XML
trees plus per-document ground-truth labellings (content, structure and
hybrid classes) and headline metadata.  The generators are deterministic
given their seed, so every experiment and benchmark is reproducible.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.datasets.corpus import FILLER_WORDS, GIVEN_NAMES, SURNAMES, TOPICS
from repro.transactions.builder import BuilderConfig, build_dataset
from repro.transactions.dataset import TransactionDataset
from repro.xmlmodel.tree import XMLTree


@dataclass
class SyntheticCorpus:
    """A generated XML collection together with its ground truth.

    Attributes
    ----------
    name:
        Corpus name (``"DBLP"``, ``"IEEE"``, ...).
    trees:
        The generated XML document trees.
    doc_labels:
        Ground-truth labellings per document: mapping labelling name
        (``"content"``, ``"structure"``, ``"hybrid"``) -> {doc_id: class}.
    class_counts:
        Number of distinct classes per labelling (the "# of clusters" column
        of the paper's tables).
    """

    name: str
    trees: List[XMLTree] = field(default_factory=list)
    doc_labels: Dict[str, Dict[str, str]] = field(default_factory=dict)
    class_counts: Dict[str, int] = field(default_factory=dict)

    def document_count(self) -> int:
        return len(self.trees)

    def to_dataset(
        self, builder_config: Optional[BuilderConfig] = None
    ) -> TransactionDataset:
        """Convert the corpus into a :class:`TransactionDataset`."""
        return build_dataset(
            self.name, self.trees, doc_labels=self.doc_labels, config=builder_config
        )

    def halved(self, seed: int = 0) -> "SyntheticCorpus":
        """Return a corpus with half of the documents (for the Fig. 7 sweep).

        The selection is a random (seeded) half that preserves the relative
        frequency of the ground-truth classes approximately.
        """
        rng = random.Random(seed)
        indices = list(range(len(self.trees)))
        rng.shuffle(indices)
        keep = sorted(indices[: max(1, len(indices) // 2)])
        trees = [self.trees[i] for i in keep]
        kept_ids = {tree.doc_id for tree in trees}
        labels = {
            name: {doc: label for doc, label in mapping.items() if doc in kept_ids}
            for name, mapping in self.doc_labels.items()
        }
        return SyntheticCorpus(
            name=f"{self.name}-half",
            trees=trees,
            doc_labels=labels,
            class_counts=dict(self.class_counts),
        )


class TextSampler:
    """Samples topic-flavoured text snippets.

    A snippet of a topical class draws ``topic_ratio`` of its words from the
    class vocabulary and the remainder from the shared filler vocabulary,
    which produces realistic overlap between classes.
    """

    def __init__(self, rng: random.Random, topic_ratio: float = 0.7) -> None:
        if not 0.0 <= topic_ratio <= 1.0:
            raise ValueError(f"topic_ratio must lie in [0, 1], got {topic_ratio}")
        self.rng = rng
        self.topic_ratio = topic_ratio

    def words(self, topic: str, count: int) -> List[str]:
        """Return *count* words flavoured by *topic*."""
        vocabulary = TOPICS[topic]
        chosen: List[str] = []
        for _ in range(count):
            if self.rng.random() < self.topic_ratio:
                chosen.append(self.rng.choice(vocabulary))
            else:
                chosen.append(self.rng.choice(FILLER_WORDS))
        return chosen

    def sentence(self, topic: str, count: int) -> str:
        """Return a space-separated snippet of *count* topic-flavoured words."""
        return " ".join(self.words(topic, count))

    def title(self, topic: str, min_words: int = 4, max_words: int = 9) -> str:
        """Return a title-like snippet."""
        return self.sentence(topic, self.rng.randint(min_words, max_words))

    def paragraph(self, topic: str, min_words: int = 20, max_words: int = 60) -> str:
        """Return a paragraph-like snippet."""
        return self.sentence(topic, self.rng.randint(min_words, max_words))

    def person_name(self) -> str:
        """Return a synthetic person name."""
        return f"{self.rng.choice(GIVEN_NAMES)} {self.rng.choice(SURNAMES)}"

    def year(self, start: int = 1995, end: int = 2009) -> str:
        """Return a publication-year-like string."""
        return str(self.rng.randint(start, end))


def spread_classes(
    count: int, classes: Sequence[str], rng: random.Random
) -> List[str]:
    """Assign *count* documents to classes, keeping class sizes balanced.

    Documents are assigned round-robin over a shuffled class order, then the
    sequence is shuffled so consecutive documents do not share a class.
    """
    if not classes:
        raise ValueError("at least one class is required")
    order = list(classes)
    rng.shuffle(order)
    assigned = [order[i % len(order)] for i in range(count)]
    rng.shuffle(assigned)
    return assigned
