"""Synthetic IEEE/INEX-like scientific article corpus.

The IEEE collection of the INEX 2008 document-mining track contains 4874
journal articles with a complex schema (front matter, body sections, back
matter).  Its ground truth distinguishes two structural categories
("transactions" vs. "non-transactions" articles), eight topical classes and
fourteen hybrid classes.  The generator reproduces those class structures:

* *transactions* articles carry a front matter with abstract and keywords, a
  body with several sections, and a back matter with references;
* *non-transactions* (magazine-style) articles have no abstract, fewer and
  flatter sections, and a ``department`` element instead of the back matter.

Repeated ``author``, ``section`` and ``reference`` elements make each
document decompose into several tree tuples, reproducing (at scale) the high
transactions-per-document ratio of the real collection.
"""

from __future__ import annotations

import random
from typing import Dict, List, Tuple

from repro.datasets.generator import SyntheticCorpus, TextSampler, spread_classes
from repro.xmlmodel.tree import XMLTree, XMLTreeBuilder

#: The eight IEEE topical classes used by the paper (Sec. 5.2).
IEEE_TOPICS: List[str] = [
    "computer",
    "graphics",
    "hardware",
    "artificial_intelligence",
    "internet",
    "mobile",
    "parallel",
    "security",
]

#: The two structural categories.
IEEE_CATEGORIES: List[str] = ["transactions", "non-transactions"]

#: Fourteen hybrid classes: every topic appears in transactions journals,
#: six topics also appear in magazine (non-transactions) issues.
IEEE_HYBRID_COMBOS: List[Tuple[str, str]] = (
    [("transactions", topic) for topic in IEEE_TOPICS]
    + [
        ("non-transactions", topic)
        for topic in ["computer", "graphics", "internet", "mobile", "security", "artificial_intelligence"]
    ]
)


def _build_transactions_article(
    builder: XMLTreeBuilder, sampler: TextSampler, topic: str, index: int
) -> None:
    rng = sampler.rng
    builder.start("article")
    builder.attribute("id", f"tx-{topic[:4]}-{index}")
    # front matter
    builder.start("fm")
    builder.element("ti", sampler.title(topic, min_words=5, max_words=10))
    for _ in range(rng.randint(1, 2)):
        builder.element("au", sampler.person_name())
    builder.element("abs", sampler.paragraph(topic, min_words=25, max_words=45))
    builder.element("kwd", sampler.sentence(topic, 5))
    builder.element("jtitle", f"IEEE Transactions on {sampler.sentence(topic, 2)}")
    builder.end()
    # body
    builder.start("bdy")
    for section_index in range(rng.randint(2, 3)):
        builder.start("sec")
        builder.element("st", sampler.title(topic, min_words=2, max_words=5))
        builder.element("p", sampler.paragraph(topic, min_words=25, max_words=50))
        builder.end()
    builder.end()
    # back matter
    builder.start("bm")
    for _ in range(rng.randint(1, 2)):
        builder.start("ref")
        builder.element("refau", sampler.person_name())
        builder.element("reftitle", sampler.title(topic))
        builder.element("refyear", sampler.year())
        builder.end()
    builder.end()
    builder.end()


def _build_magazine_article(
    builder: XMLTreeBuilder, sampler: TextSampler, topic: str, index: int
) -> None:
    rng = sampler.rng
    builder.start("article")
    builder.attribute("id", f"mag-{topic[:4]}-{index}")
    builder.start("hdr")
    builder.element("ti", sampler.title(topic, min_words=4, max_words=8))
    builder.element("au", sampler.person_name())
    builder.element("dept", sampler.sentence(topic, 2))
    builder.element("mtitle", f"IEEE {sampler.sentence(topic, 1)} Magazine")
    builder.end()
    builder.start("bdy")
    for _ in range(rng.randint(1, 2)):
        builder.start("sec")
        builder.element("st", sampler.title(topic, min_words=2, max_words=4))
        builder.element("p", sampler.paragraph(topic, min_words=20, max_words=40))
        builder.end()
    builder.end()
    builder.end()


def generate_ieee(
    num_documents: int = 48,
    seed: int = 0,
    topic_ratio: float = 0.7,
) -> SyntheticCorpus:
    """Generate a synthetic IEEE-like corpus.

    Each document decomposes into several transactions because of the
    repeated authors, sections and references, mirroring (at reduced scale)
    the real collection's very high transaction count.
    """
    rng = random.Random(seed)
    sampler = TextSampler(rng, topic_ratio=topic_ratio)

    combos = spread_classes(
        num_documents, [f"{cat}|{topic}" for cat, topic in IEEE_HYBRID_COMBOS], rng
    )

    trees: List[XMLTree] = []
    structure_labels: Dict[str, str] = {}
    content_labels: Dict[str, str] = {}
    hybrid_labels: Dict[str, str] = {}

    for index, combo in enumerate(combos):
        category, topic = combo.split("|")
        doc_id = f"ieee-{index:05d}"
        builder = XMLTreeBuilder(doc_id=doc_id)
        if category == "transactions":
            _build_transactions_article(builder, sampler, topic, index)
        else:
            _build_magazine_article(builder, sampler, topic, index)
        trees.append(builder.finish())
        structure_labels[doc_id] = category
        content_labels[doc_id] = topic
        hybrid_labels[doc_id] = combo

    return SyntheticCorpus(
        name="IEEE",
        trees=trees,
        doc_labels={
            "structure": structure_labels,
            "content": content_labels,
            "hybrid": hybrid_labels,
        },
        class_counts={
            "structure": len(IEEE_CATEGORIES),
            "content": len(IEEE_TOPICS),
            "hybrid": len(IEEE_HYBRID_COMBOS),
        },
    )
