"""Registry of the four evaluation corpora and their paper parameters.

The registry maps corpus names to their generator, to the number of clusters
used by the paper for every clustering goal (the "# of clusters" column of
Tables 1-2), and to a per-corpus size profile; experiments and benchmarks
obtain datasets exclusively through :func:`get_corpus` / :func:`get_dataset`
so sizes stay consistent across the whole harness.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from repro.datasets.dblp import generate_dblp
from repro.datasets.generator import SyntheticCorpus
from repro.datasets.ieee import generate_ieee
from repro.datasets.shakespeare import generate_shakespeare
from repro.datasets.wikipedia import generate_wikipedia
from repro.transactions.builder import BuilderConfig
from repro.transactions.dataset import TransactionDataset


@dataclass(frozen=True)
class CorpusProfile:
    """Static description of one evaluation corpus.

    Attributes
    ----------
    name:
        Canonical corpus name.
    cluster_counts:
        Number of clusters ``k`` used by the paper for each clustering goal
        (``content``, ``hybrid``, ``structure``); mirrors Tables 1(a)-(c).
    default_documents:
        Number of documents generated at ``scale = 1.0`` (``None`` for the
        Shakespeare corpus, which always has seven plays and scales through
        its act/scene/speech parameters instead).
    supports_structure:
        Whether the corpus has a meaningful structural ground truth
        (Wikipedia does not, matching the paper).
    """

    name: str
    cluster_counts: Dict[str, int]
    default_documents: Optional[int]
    supports_structure: bool = True


PROFILES: Dict[str, CorpusProfile] = {
    "DBLP": CorpusProfile(
        name="DBLP",
        cluster_counts={"content": 6, "hybrid": 16, "structure": 4},
        default_documents=120,
    ),
    "IEEE": CorpusProfile(
        name="IEEE",
        cluster_counts={"content": 8, "hybrid": 14, "structure": 2},
        default_documents=48,
    ),
    "Shakespeare": CorpusProfile(
        name="Shakespeare",
        cluster_counts={"content": 5, "hybrid": 12, "structure": 3},
        default_documents=None,
    ),
    "Wikipedia": CorpusProfile(
        name="Wikipedia",
        cluster_counts={"content": 21, "hybrid": 21, "structure": 1},
        default_documents=105,
        supports_structure=False,
    ),
}

#: Canonical corpus ordering used by reports (same order as the paper).
DATASET_NAMES: List[str] = ["DBLP", "IEEE", "Shakespeare", "Wikipedia"]

#: Named corpus scales for the backend size-sweep benchmark
#: (``bench_backend.py --size-sweep``): each maps a label to the ``scale``
#: passed into :func:`get_dataset`, spanning roughly one decade of corpus
#: sizes so the python -> numpy -> sharded -> torch crossovers (and the
#: cold-compile vs warm-attach gap of the compiled-corpus store) are all
#: visible in one sweep.
SIZE_SWEEP_SCALES: Dict[str, float] = {
    "scale-1": 1.0,
    "scale-5": 5.0,
    "scale-20": 20.0,
}


def profile(name: str) -> CorpusProfile:
    """Return the :class:`CorpusProfile` of *name* (case-insensitive)."""
    key = _canonical(name)
    return PROFILES[key]


def _canonical(name: str) -> str:
    for key in PROFILES:
        if key.lower() == name.lower():
            return key
    raise KeyError(
        f"unknown corpus {name!r}; available: {', '.join(PROFILES)}"
    )


def get_corpus(name: str, scale: float = 1.0, seed: int = 0) -> SyntheticCorpus:
    """Generate the corpus *name* at the given *scale*.

    ``scale`` multiplies the document count (DBLP, IEEE, Wikipedia) or the
    per-play size (Shakespeare); a scale of 0.5 approximately halves the
    number of transactions, which is how the "half dataset" series of Fig. 7
    is produced.
    """
    key = _canonical(name)
    if scale <= 0:
        raise ValueError(f"scale must be positive, got {scale}")
    if key == "DBLP":
        docs = max(len_profile(key, scale), 16)
        return generate_dblp(num_documents=docs, seed=seed)
    if key == "IEEE":
        docs = max(len_profile(key, scale), 14)
        return generate_ieee(num_documents=docs, seed=seed)
    if key == "Wikipedia":
        docs = max(len_profile(key, scale), 21)
        return generate_wikipedia(num_documents=docs, seed=seed)
    # Shakespeare: scale the number of speeches (and personas) per play.
    speeches = max(2, round(2 * scale))
    scenes = max(1, round(2 * min(scale, 1.5)))
    personas = 2 if scale < 1.5 else 3
    return generate_shakespeare(
        seed=seed,
        acts=2,
        scenes_per_act=scenes,
        speeches_per_scene=speeches,
        personas=personas,
    )


def len_profile(name: str, scale: float) -> int:
    """Return the scaled document count for corpora with a document knob."""
    default = PROFILES[_canonical(name)].default_documents
    if default is None:
        raise ValueError(f"corpus {name} does not scale by document count")
    return int(round(default * scale))


def get_dataset(
    name: str,
    scale: float = 1.0,
    seed: int = 0,
    builder_config: Optional[BuilderConfig] = None,
) -> TransactionDataset:
    """Generate corpus *name* and convert it into a transaction dataset."""
    return get_corpus(name, scale=scale, seed=seed).to_dataset(builder_config)


def cluster_count(name: str, goal: str) -> int:
    """Return the paper's ``k`` for corpus *name* and clustering *goal*.

    ``goal`` is one of ``"content"``, ``"hybrid"`` / ``"structure/content"``,
    ``"structure"``.
    """
    key = _canonical(name)
    goal_key = goal.lower()
    if goal_key in ("hybrid", "structure/content", "structure-content"):
        goal_key = "hybrid"
    if goal_key not in ("content", "hybrid", "structure"):
        raise KeyError(f"unknown clustering goal: {goal}")
    return PROFILES[key].cluster_counts[goal_key]
