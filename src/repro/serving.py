"""Thin serving layer over a loaded :class:`~repro.core.model_store.ClusterModel`.

Three ways to serve classification queries, all sharing one warm model:

- :func:`make_wsgi_app` -- a dependency-free WSGI application
  (``POST /classify`` with an XML body -> JSON verdict; ``GET /healthz``
  -> serving stats), mountable under any WSGI server.
- :func:`serve_http` -- the same app on :mod:`wsgiref.simple_server`
  (``repro serve --model DIR --port N``).
- :func:`serve_stdin` -- a line protocol for batch/pipe use
  (``repro serve --model DIR``): each input line names an XML file, each
  output line is the JSON classify verdict.

Every response reports the latency of its own classify call, so a load
generator (``benchmarks/bench_serving.py``) can build latency histograms
without instrumenting the server.
"""

from __future__ import annotations

import json
import time
from typing import Callable, Iterable, List, Optional, TextIO

from repro.core.model_store import ClusterModel
from repro.xmlmodel.errors import XMLError

#: Upper bound on accepted XML request bodies (16 MiB) -- a guard against
#: unbounded reads, not a tuning knob.
MAX_REQUEST_BYTES = 16 * 1024 * 1024


def _json_bytes(payload: dict) -> bytes:
    """Encode a response payload as UTF-8 JSON."""
    return (json.dumps(payload) + "\n").encode("utf-8")


def classify_payload(model: ClusterModel, xml_text: str, doc_id: Optional[str] = None) -> dict:
    """Classify *xml_text* and return the JSON-safe response payload.

    The payload is the :meth:`ClassifyResult.to_dict` encoding plus the
    latency of this call in milliseconds.
    """
    start = time.perf_counter()
    result = model.classify(xml_text, doc_id=doc_id)
    payload = result.to_dict()
    payload["latency_ms"] = (time.perf_counter() - start) * 1000.0
    return payload


def make_wsgi_app(model: ClusterModel) -> Callable:
    """Build a WSGI application serving classify queries against *model*.

    Routes:

    - ``POST /classify`` (or ``POST /``): body is an XML document; the
      response is the classify verdict as JSON.  Malformed XML answers
      ``400`` with an ``error`` field instead of failing the worker.
    - ``GET /healthz`` (or ``GET /`` / ``GET /stats``): serving stats
      (store status, query counters, backend spec).
    """

    def app(environ, start_response) -> Iterable[bytes]:
        method = environ.get("REQUEST_METHOD", "GET")
        path = environ.get("PATH_INFO", "/") or "/"
        if method == "GET" and path in ("/", "/healthz", "/stats"):
            body = _json_bytes({"status": "ok", **model.stats()})
            start_response(
                "200 OK", [("Content-Type", "application/json"),
                           ("Content-Length", str(len(body)))]
            )
            return [body]
        if method == "POST" and path in ("/", "/classify"):
            try:
                length = int(environ.get("CONTENT_LENGTH") or 0)
            except ValueError:
                length = 0
            length = min(length, MAX_REQUEST_BYTES)
            raw = environ["wsgi.input"].read(length) if length else b""
            try:
                payload = classify_payload(model, raw.decode("utf-8"))
                status, body = "200 OK", _json_bytes(payload)
            except (XMLError, UnicodeDecodeError) as error:
                status = "400 Bad Request"
                body = _json_bytes({"error": str(error)})
            start_response(
                status, [("Content-Type", "application/json"),
                         ("Content-Length", str(len(body)))]
            )
            return [body]
        body = _json_bytes({"error": f"no route for {method} {path}"})
        start_response(
            "404 Not Found", [("Content-Type", "application/json"),
                              ("Content-Length", str(len(body)))]
        )
        return [body]

    return app


def serve_stdin(
    model: ClusterModel,
    input_stream: TextIO,
    output_stream: TextIO,
) -> int:
    """Serve the line protocol: one XML file path in, one JSON verdict out.

    Blank lines are skipped; per-line errors (unreadable file, malformed
    XML) become JSON ``error`` lines so one bad document cannot kill a
    pipe.  Returns the number of lines answered.
    """
    answered = 0
    for line in input_stream:
        path = line.strip()
        if not path:
            continue
        try:
            start = time.perf_counter()
            result = model.classify_file(path)
            payload = result.to_dict()
            payload["latency_ms"] = (time.perf_counter() - start) * 1000.0
            payload["file"] = path
        except (OSError, XMLError) as error:
            payload = {"file": path, "error": str(error)}
        output_stream.write(json.dumps(payload) + "\n")
        output_stream.flush()
        answered += 1
    return answered


def serve_http(
    model: ClusterModel,
    host: str = "127.0.0.1",
    port: int = 8000,
    max_requests: Optional[int] = None,
) -> None:
    """Serve the WSGI app on :mod:`wsgiref.simple_server`.

    *max_requests* bounds the number of handled requests (used by tests
    and smoke runs); ``None`` serves forever.
    """
    from wsgiref.simple_server import WSGIRequestHandler, make_server

    class _QuietHandler(WSGIRequestHandler):
        """Request handler without per-request stderr chatter."""

        def log_message(self, format, *args):  # noqa: A002 - WSGI signature
            """Suppress the default access log."""

    with make_server(host, port, make_wsgi_app(model), handler_class=_QuietHandler) as server:
        if max_requests is None:
            server.serve_forever()
        else:
            for _ in range(max_requests):
                server.handle_request()
