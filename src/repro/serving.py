"""Serving layer: stdin / WSGI single-model paths and the async router.

Two generations of serving share this module:

- The **single-model** surfaces from the first serving PR --
  :func:`make_wsgi_app` (a dependency-free WSGI application),
  :func:`serve_http` (the same app on :mod:`wsgiref.simple_server`, now
  with a per-connection socket timeout so a stalled client cannot block
  the single-threaded loop) and :func:`serve_stdin` (the line protocol
  for batch/pipe use).  One process, one warm
  :class:`~repro.core.model_store.ClusterModel`.
- The **multi-model async server** -- :class:`AsyncModelServer` on
  :func:`asyncio.start_server` with a :class:`ModelRouter` resolving
  model names through the durable registry (:mod:`repro.store`).  It
  routes ``POST /models/<name>/classify``, serves per-model counters at
  ``GET /models/<name>/stats``, hot-reloads fingerprint-changed
  publishes with zero dropped in-flight requests, drains gracefully on
  SIGTERM, and optionally dispatches CPU-bound classify calls to a
  process pool (``--workers N``) so throughput scales past the
  single-process ceiling on multi-core hosts.

Every classify response reports the latency of its own call, so a load
generator (``benchmarks/bench_serving.py``) can build latency histograms
without instrumenting the server.  The operations guide (lifecycle,
routing API, failure semantics) is ``docs/SERVING.md``.
"""

from __future__ import annotations

import asyncio
import contextlib
import json
import signal
import threading
import time
from collections import deque
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Deque, Dict, Iterable, List, Optional, TextIO, Tuple

from repro.core.model_store import ClusterModel, load_model
from repro.xmlmodel.errors import XMLError

#: Upper bound on accepted XML request bodies (16 MiB) -- a guard against
#: unbounded reads, not a tuning knob.
MAX_REQUEST_BYTES = 16 * 1024 * 1024

#: Default per-connection read timeout (seconds) of both HTTP servers: a
#: client that connects and then stalls is disconnected after this bound
#: instead of blocking a worker (wsgiref) or holding a connection slot
#: (asyncio) forever.
DEFAULT_REQUEST_TIMEOUT = 30.0

#: How long a graceful drain waits for in-flight requests (seconds).
DEFAULT_DRAIN_TIMEOUT = 30.0

#: Per-model ring-buffer size for the /stats latency percentiles.
LATENCY_WINDOW = 1024

#: Worker processes keep at most this many distinct model directories
#: warm; older entries are closed and evicted (hot reloads retire
#: directories, so an unbounded cache would leak one model per publish).
WORKER_MODEL_CACHE_CAP = 8


def _json_bytes(payload: dict) -> bytes:
    """Encode a response payload as UTF-8 JSON."""
    return (json.dumps(payload) + "\n").encode("utf-8")


def classify_payload(model: ClusterModel, xml_text: str, doc_id: Optional[str] = None) -> dict:
    """Classify *xml_text* and return the JSON-safe response payload.

    The payload is the :meth:`ClassifyResult.to_dict` encoding plus the
    latency of this call in milliseconds.
    """
    start = time.perf_counter()
    result = model.classify(xml_text, doc_id=doc_id)
    payload = result.to_dict()
    payload["latency_ms"] = (time.perf_counter() - start) * 1000.0
    return payload


# --------------------------------------------------------------------------- #
# Single-model serving (stdin, WSGI, wsgiref)
# --------------------------------------------------------------------------- #
def make_wsgi_app(model: ClusterModel) -> Callable:
    """Build a WSGI application serving classify queries against *model*.

    Routes:

    - ``POST /classify`` (or ``POST /``): body is an XML document; the
      response is the classify verdict as JSON.  Malformed XML answers
      ``400`` with an ``error`` field instead of failing the worker.
    - ``GET /healthz`` (or ``GET /`` / ``GET /stats``): serving stats
      (store status, query counters, backend spec).
    """

    def app(environ, start_response) -> Iterable[bytes]:
        method = environ.get("REQUEST_METHOD", "GET")
        path = environ.get("PATH_INFO", "/") or "/"
        if method == "GET" and path in ("/", "/healthz", "/stats"):
            body = _json_bytes({"status": "ok", **model.stats()})
            start_response(
                "200 OK", [("Content-Type", "application/json"),
                           ("Content-Length", str(len(body)))]
            )
            return [body]
        if method == "POST" and path in ("/", "/classify"):
            try:
                length = int(environ.get("CONTENT_LENGTH") or 0)
            except ValueError:
                length = 0
            length = min(length, MAX_REQUEST_BYTES)
            raw = environ["wsgi.input"].read(length) if length else b""
            try:
                payload = classify_payload(model, raw.decode("utf-8"))
                status, body = "200 OK", _json_bytes(payload)
            except (XMLError, UnicodeDecodeError) as error:
                status = "400 Bad Request"
                body = _json_bytes({"error": str(error)})
            start_response(
                status, [("Content-Type", "application/json"),
                         ("Content-Length", str(len(body)))]
            )
            return [body]
        body = _json_bytes({"error": f"no route for {method} {path}"})
        start_response(
            "404 Not Found", [("Content-Type", "application/json"),
                              ("Content-Length", str(len(body)))]
        )
        return [body]

    return app


def serve_stdin(
    model: ClusterModel,
    input_stream: TextIO,
    output_stream: TextIO,
) -> int:
    """Serve the line protocol: one XML file path in, one JSON verdict out.

    Blank lines are skipped; per-line errors (unreadable file, malformed
    XML) become JSON ``error`` lines so one bad document cannot kill a
    pipe.  Returns the number of lines answered.
    """
    answered = 0
    for line in input_stream:
        path = line.strip()
        if not path:
            continue
        try:
            start = time.perf_counter()
            result = model.classify_file(path)
            payload = result.to_dict()
            payload["latency_ms"] = (time.perf_counter() - start) * 1000.0
            payload["file"] = path
        except (OSError, XMLError) as error:
            payload = {"file": path, "error": str(error)}
        output_stream.write(json.dumps(payload) + "\n")
        output_stream.flush()
        answered += 1
    return answered


def serve_http(
    model: ClusterModel,
    host: str = "127.0.0.1",
    port: int = 8000,
    max_requests: Optional[int] = None,
    request_timeout: Optional[float] = DEFAULT_REQUEST_TIMEOUT,
) -> None:
    """Serve the WSGI app on :mod:`wsgiref.simple_server`.

    *max_requests* bounds the number of handled requests (used by tests
    and smoke runs); ``None`` serves forever.  *request_timeout* is the
    per-connection socket timeout: wsgiref handles one request at a
    time, so without it a single client that connects and then sends
    nothing blocks every other client **forever** -- with it, the stalled
    connection times out and the loop moves on (regression-tested by
    ``tests/test_serving.py``).  ``None`` disables the bound.
    """
    from wsgiref.simple_server import WSGIRequestHandler, make_server

    class _QuietHandler(WSGIRequestHandler):
        """Request handler without per-request stderr chatter."""

        # socket timeout applied by BaseRequestHandler.setup(); a read
        # that stalls past it raises, handle_one_request() drops the
        # connection, and the serve loop continues with the next client
        timeout = request_timeout

        def log_message(self, format, *args):  # noqa: A002 - WSGI signature
            """Suppress the default access log."""

        def handle(self):
            """Serve one request, treating a client stall as a drop."""
            try:
                super().handle()
            except (TimeoutError, OSError):  # pragma: no cover - timing
                self.close_connection = True

    with make_server(host, port, make_wsgi_app(model), handler_class=_QuietHandler) as server:
        if max_requests is None:
            server.serve_forever()
        else:
            for _ in range(max_requests):
                server.handle_request()


# --------------------------------------------------------------------------- #
# Worker-side model execution (process-pool classify)
# --------------------------------------------------------------------------- #
#: Per-process model cache: directory -> (fingerprint, ClusterModel).
_PROCESS_MODELS: Dict[str, Tuple[str, ClusterModel]] = {}


def process_model(
    directory: str, fingerprint: str, backend: Optional[str] = None
) -> ClusterModel:
    """The calling process' warm model for *directory* (load on first use).

    Worker processes keep one loaded :class:`ClusterModel` per model
    directory, keyed by the registry fingerprint: a hot reload that
    re-publishes *the same directory* with new content (a re-save in
    place) invalidates the cached entry, while a publish into a fresh
    directory simply lands in a new cache slot -- in-flight calls against
    the old directory keep their old model either way.  The cache is
    capped at :data:`WORKER_MODEL_CACHE_CAP` directories (oldest closed
    and evicted), bounding worker memory across many reloads.
    """
    cached = _PROCESS_MODELS.get(directory)
    if cached is not None and cached[0] == fingerprint:
        return cached[1]
    if cached is not None:
        cached[1].close()
        del _PROCESS_MODELS[directory]
    while len(_PROCESS_MODELS) >= WORKER_MODEL_CACHE_CAP:
        oldest = next(iter(_PROCESS_MODELS))
        _PROCESS_MODELS.pop(oldest)[1].close()
    model = load_model(directory, backend=backend)
    _PROCESS_MODELS[directory] = (fingerprint, model)
    return model


def clear_process_models() -> None:
    """Close and drop every cached worker model (tests, pool shutdown)."""
    while _PROCESS_MODELS:
        _PROCESS_MODELS.popitem()[1][1].close()


def worker_classify(
    directory: str,
    fingerprint: str,
    backend: Optional[str],
    xml_text: str,
) -> dict:
    """Classify *xml_text* on this process' warm model (pool entry point).

    Module-level (hence picklable) so :class:`AsyncModelServer` can
    dispatch it through a :class:`~concurrent.futures.ProcessPoolExecutor`;
    the returned payload additionally carries the worker's store status so
    the parent's ``/stats`` can report it without loading the model
    itself.
    """
    model = process_model(directory, fingerprint, backend)
    payload = classify_payload(model, xml_text)
    payload["store"] = model.store_status
    return payload


def worker_classify_batch(
    directory: str,
    fingerprint: str,
    backend: Optional[str],
    documents: List[str],
) -> List[dict]:
    """Classify a batch of documents on one warm worker (bench entry point).

    One pool dispatch amortises the IPC cost over the whole slice, which
    is how ``bench_serving.py --workers N`` measures the pool's aggregate
    classify capacity separately from HTTP framing overhead.
    """
    model = process_model(directory, fingerprint, backend)
    results = []
    for document in documents:
        payload = classify_payload(model, document)
        payload["store"] = model.store_status
        results.append(payload)
    return results


# --------------------------------------------------------------------------- #
# The model router
# --------------------------------------------------------------------------- #
@dataclass
class RouteTarget:
    """Where one model name currently points (directory + identity)."""

    name: str
    directory: str
    fingerprint: str
    version: Optional[int] = None


class ModelRouter:
    """Resolves model names to :class:`RouteTarget` entries.

    Two sources, same interface:

    - **registry mode** (``registry`` given): the routing table is the
      registry's active versions, optionally restricted to *names*; a
      :meth:`refresh` re-reads the registry, which is how a ``cxk models
      publish`` becomes visible to a running server (fingerprints come
      from the catalog -- no model directory is touched to detect a
      swap);
    - **static mode** (``model_dirs`` given): fixed name -> directory
      pairs for registry-less serving; :meth:`refresh` re-fingerprints
      the directories, so an in-place re-save is still detected.
    """

    def __init__(
        self,
        registry=None,
        names: Optional[List[str]] = None,
        model_dirs: Optional[Dict[str, str]] = None,
    ) -> None:
        """Build a router over a registry or a static name->dir mapping."""
        if (registry is None) == (model_dirs is None):
            raise ValueError(
                "ModelRouter needs exactly one source: a registry or "
                "a static model_dirs mapping"
            )
        self._registry = registry
        self._names = list(names) if names else None
        self._model_dirs = dict(model_dirs) if model_dirs else None

    def targets(self) -> Dict[str, RouteTarget]:
        """The current routing table, freshly resolved from the source.

        Raises :class:`~repro.store.registry.RegistryError` when a
        requested name has no active version, so a typo in ``--models``
        fails at startup instead of 404ing forever.
        """
        if self._registry is not None:
            records = self._registry.active_models()
            if self._names is not None:
                by_name = {record.name: record for record in records}
                missing = [name for name in self._names if name not in by_name]
                if missing:
                    from repro.store.registry import RegistryError

                    raise RegistryError(
                        f"no active registry version for: {', '.join(missing)}"
                    )
                records = [by_name[name] for name in self._names]
            return {
                record.name: RouteTarget(
                    name=record.name,
                    directory=record.directory,
                    fingerprint=record.fingerprint,
                    version=record.version,
                )
                for record in records
            }
        from repro.store.registry import model_fingerprint

        return {
            name: RouteTarget(
                name=name,
                directory=str(directory),
                fingerprint=model_fingerprint(directory),
            )
            for name, directory in self._model_dirs.items()
        }


# --------------------------------------------------------------------------- #
# The async multi-model server
# --------------------------------------------------------------------------- #
def _percentile(sorted_values: List[float], fraction: float) -> float:
    """Nearest-rank percentile of an ascending-sorted non-empty list."""
    index = min(
        len(sorted_values) - 1, max(0, round(fraction * (len(sorted_values) - 1)))
    )
    return sorted_values[index]


@dataclass
class _RouteState:
    """One routed model: its current target, counters and (inline) model."""

    target: RouteTarget
    model: Optional[ClusterModel] = None
    store: str = "unknown"
    requests: int = 0
    errors: int = 0
    reloads: int = 0
    latencies_ms: Deque[float] = field(
        default_factory=lambda: deque(maxlen=LATENCY_WINDOW)
    )

    def stats(self) -> Dict[str, object]:
        """JSON-safe per-model counters (the ``/models/<name>/stats`` body)."""
        ordered = sorted(self.latencies_ms)
        return {
            "model": self.target.name,
            "version": self.target.version,
            "fingerprint": self.target.fingerprint,
            "directory": self.target.directory,
            "store": self.store,
            "requests": self.requests,
            "errors": self.errors,
            "reloads": self.reloads,
            "latency_ms_p50": _percentile(ordered, 0.50) if ordered else None,
            "latency_ms_p99": _percentile(ordered, 0.99) if ordered else None,
        }


class AsyncModelServer:
    """Asyncio HTTP server routing classify traffic to published models.

    Routes (all responses JSON):

    - ``POST /models/<name>/classify`` -- body is an XML document; the
      verdict of the named model.  ``POST /classify`` works when exactly
      one model is routed.
    - ``GET /models/<name>/stats`` -- per-model counters: requests,
      errors, reload count, p50/p99 latency over the last
      :data:`LATENCY_WINDOW` calls, store status, routed version and
      fingerprint.
    - ``GET /models`` -- the routing table; ``GET /healthz`` -- overall
      status (``ok`` | ``draining``), per-model summary, worker count.
    - ``POST /reload`` -- re-resolve the router and swap every route
      whose fingerprint changed; the response names swapped / added /
      removed models.  With *poll_interval* the same check also runs on
      a timer, so a registry publish hot-reloads without any call.

    Concurrency model: request parsing and bookkeeping run on the event
    loop; the CPU-bound classify runs either inline (``workers=0``, one
    process, requests serialise) or on a :class:`ProcessPoolExecutor` of
    *workers* pre-forked processes, each keeping its own warm models
    (:func:`process_model`).  Hot reload swaps a route atomically between
    requests -- in-flight calls hold the old target (and the workers its
    old model), so **zero requests are dropped** by a publish.  SIGTERM /
    SIGINT trigger a graceful drain: stop accepting, finish in-flight
    work (bounded by *drain_timeout*), then shut the pool down.
    """

    def __init__(
        self,
        router: ModelRouter,
        host: str = "127.0.0.1",
        port: int = 8000,
        *,
        workers: int = 0,
        backend: Optional[str] = None,
        request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
        drain_timeout: float = DEFAULT_DRAIN_TIMEOUT,
        poll_interval: Optional[float] = None,
        max_requests: Optional[int] = None,
    ) -> None:
        """Configure the server (no sockets are opened until :meth:`run`)."""
        self.router = router
        self.host = host
        self.port = port
        self.workers = max(0, int(workers))
        self.backend = backend
        self.request_timeout = request_timeout
        self.drain_timeout = drain_timeout
        self.poll_interval = poll_interval
        self.max_requests = max_requests
        self.routes: Dict[str, _RouteState] = {}
        self.started = threading.Event()
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._server: Optional[asyncio.AbstractServer] = None
        self._pool: Optional[ProcessPoolExecutor] = None
        self._shutdown: Optional[asyncio.Event] = None
        self._inflight = 0
        self._handled = 0
        self._draining = False

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def _build_routes(self) -> None:
        """Resolve the initial routing table (and load models inline)."""
        for name, target in self.router.targets().items():
            self.routes[name] = self._make_route(target)

    def _make_route(self, target: RouteTarget) -> _RouteState:
        """Materialise one route; inline mode loads the model eagerly."""
        state = _RouteState(target=target)
        if self.workers == 0:
            state.model = load_model(target.directory, backend=self.backend)
            state.store = state.model.store_status
        return state

    def refresh_routes(self) -> Dict[str, List[str]]:
        """Re-resolve the router; swap fingerprint-changed routes.

        Returns ``{"swapped": [...], "added": [...], "removed": [...]}``.
        The swap replaces the route entry atomically (a dict assignment
        on the event loop); requests already dispatched keep their old
        :class:`RouteTarget`, so none are dropped.
        """
        fresh = self.router.targets()
        summary: Dict[str, List[str]] = {"swapped": [], "added": [], "removed": []}
        for name, target in fresh.items():
            current = self.routes.get(name)
            if current is None:
                self.routes[name] = self._make_route(target)
                summary["added"].append(name)
            elif current.target.fingerprint != target.fingerprint:
                replacement = self._make_route(target)
                # carry the cumulative counters across the swap; /stats
                # reports the live version next to them
                replacement.requests = current.requests
                replacement.errors = current.errors
                replacement.latencies_ms = current.latencies_ms
                replacement.reloads = current.reloads + 1
                self.routes[name] = replacement
                if current.model is not None:
                    current.model.close()
                summary["swapped"].append(name)
        for name in list(self.routes):
            if name not in fresh:
                dropped = self.routes.pop(name)
                if dropped.model is not None:
                    dropped.model.close()
                summary["removed"].append(name)
        return summary

    def request_shutdown(self) -> None:
        """Begin a graceful drain (idempotent; callable from the loop)."""
        self._draining = True
        if self._shutdown is not None:
            self._shutdown.set()

    def shutdown_threadsafe(self) -> None:
        """Begin a graceful drain from any thread (tests, embedding code).

        A no-op when the event loop has already finished -- callers can
        always invoke it unconditionally on their way out.
        """
        loop = self._loop
        if loop is not None:
            with contextlib.suppress(RuntimeError):
                loop.call_soon_threadsafe(self.request_shutdown)

    async def run(self, install_signal_handlers: bool = True) -> None:
        """Serve until :meth:`request_shutdown` (or SIGTERM/SIGINT), then drain.

        The graceful-drain contract: after the shutdown signal the
        listening socket closes (new connections are refused and kept-
        alive connections get ``503``), every in-flight request still
        completes (bounded by *drain_timeout*), and only then do the pool
        and the inline models shut down.
        """
        self._loop = asyncio.get_running_loop()
        self._shutdown = asyncio.Event()
        if install_signal_handlers:
            # not available off the main thread (tests embed the server
            # in a background thread and use shutdown_threadsafe instead)
            with contextlib.suppress(NotImplementedError, RuntimeError, ValueError):
                for signum in (signal.SIGTERM, signal.SIGINT):
                    self._loop.add_signal_handler(signum, self.request_shutdown)
        if self.workers > 0:
            self._pool = ProcessPoolExecutor(max_workers=self.workers)
        self._build_routes()
        self._server = await asyncio.start_server(
            self._serve_connection, self.host, self.port
        )
        self.started.set()
        poller = (
            asyncio.ensure_future(self._poll_registry())
            if self.poll_interval
            else None
        )
        try:
            await self._shutdown.wait()
        finally:
            if poller is not None:
                poller.cancel()
                with contextlib.suppress(asyncio.CancelledError):
                    await poller
            self._server.close()
            await self._server.wait_closed()
            deadline = time.monotonic() + self.drain_timeout
            while self._inflight > 0 and time.monotonic() < deadline:
                await asyncio.sleep(0.01)
            if self._pool is not None:
                self._pool.shutdown(wait=True)
                self._pool = None
            for state in self.routes.values():
                if state.model is not None:
                    state.model.close()
            self.routes.clear()

    async def _poll_registry(self) -> None:
        """Timer task: hot-reload fingerprint changes every *poll_interval*."""
        while True:
            await asyncio.sleep(self.poll_interval)
            try:
                self.refresh_routes()
            except Exception:  # noqa: BLE001 - keep serving on registry blips
                # a transient registry error (locked file, mid-publish
                # state) must not kill the server; the next tick retries
                continue

    # ------------------------------------------------------------------ #
    # Connection handling
    # ------------------------------------------------------------------ #
    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, Dict[str, str], bytes]]:
        """Parse one HTTP/1.1 request; ``None`` on a cleanly closed socket.

        Every read is bounded by *request_timeout*, which is what keeps a
        stalled client from pinning a connection slot.
        """
        line = await asyncio.wait_for(
            reader.readline(), timeout=self.request_timeout
        )
        if not line:
            return None
        try:
            method, path, _version = line.decode("ascii").split()
        except ValueError as error:
            raise _BadRequest(f"malformed request line: {line!r}") from error
        headers: Dict[str, str] = {}
        while True:
            line = await asyncio.wait_for(
                reader.readline(), timeout=self.request_timeout
            )
            if line in (b"\r\n", b"\n", b""):
                break
            name, _, value = line.decode("latin-1").partition(":")
            headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0") or "0")
        except ValueError as error:
            raise _BadRequest("invalid Content-Length") from error
        if length > MAX_REQUEST_BYTES:
            raise _BadRequest(
                f"request body of {length} bytes exceeds {MAX_REQUEST_BYTES}"
            )
        body = b""
        if length:
            body = await asyncio.wait_for(
                reader.readexactly(length), timeout=self.request_timeout
            )
        return method, path, headers, body

    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        """Serve keep-alive requests on one connection until close/drain."""
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except (asyncio.TimeoutError, TimeoutError, asyncio.IncompleteReadError,
                        ConnectionError):
                    break
                except _BadRequest as error:
                    await self._respond(writer, 400, {"error": str(error)}, close=True)
                    break
                if request is None:
                    break
                if self._draining:
                    await self._respond(
                        writer, 503, {"error": "draining"}, close=True
                    )
                    break
                method, path, _headers, body = request
                self._inflight += 1
                try:
                    status, payload = await self._handle(method, path, body)
                finally:
                    self._inflight -= 1
                self._handled += 1
                if (
                    self.max_requests is not None
                    and self._handled >= self.max_requests
                ):
                    self.request_shutdown()
                await self._respond(writer, status, payload)
        except ConnectionError:  # pragma: no cover - client went away
            pass
        except asyncio.CancelledError:
            # loop teardown cancelled an idle keep-alive connection; exit
            # normally so the stream protocol's done-callback stays quiet
            pass
        finally:
            with contextlib.suppress(ConnectionError, asyncio.CancelledError):
                writer.close()
                await writer.wait_closed()

    async def _respond(
        self,
        writer: asyncio.StreamWriter,
        status: int,
        payload: dict,
        close: bool = False,
    ) -> None:
        """Write one JSON response (keep-alive unless *close*)."""
        reasons = {200: "OK", 400: "Bad Request", 404: "Not Found",
                   500: "Internal Server Error", 503: "Service Unavailable"}
        body = _json_bytes(payload)
        head = (
            f"HTTP/1.1 {status} {reasons.get(status, 'Unknown')}\r\n"
            f"Content-Type: application/json\r\n"
            f"Content-Length: {len(body)}\r\n"
            f"Connection: {'close' if close else 'keep-alive'}\r\n\r\n"
        )
        writer.write(head.encode("ascii") + body)
        await writer.drain()

    # ------------------------------------------------------------------ #
    # Request dispatch
    # ------------------------------------------------------------------ #
    async def _handle(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, dict]:
        """Route one parsed request to its handler."""
        parts = [part for part in path.split("/") if part]
        if method == "GET" and path in ("/", "/healthz"):
            return 200, self._health()
        if method == "GET" and path == "/models":
            return 200, {
                "models": [state.stats() for state in self.routes.values()]
            }
        if method == "POST" and path == "/reload":
            return 200, {"reloaded": self.refresh_routes()}
        if method == "POST" and path == "/classify" and len(self.routes) == 1:
            (state,) = self.routes.values()
            return await self._classify(state, body)
        if len(parts) == 3 and parts[0] == "models":
            state = self.routes.get(parts[1])
            if state is None:
                return 404, {
                    "error": f"no routed model named {parts[1]!r}",
                    "models": sorted(self.routes),
                }
            if method == "POST" and parts[2] == "classify":
                return await self._classify(state, body)
            if method == "GET" and parts[2] == "stats":
                return 200, state.stats()
        return 404, {"error": f"no route for {method} {path}"}

    def _health(self) -> dict:
        """The ``/healthz`` body: overall status plus per-model summary."""
        return {
            "status": "draining" if self._draining else "ok",
            "workers": self.workers,
            "handled": self._handled,
            "models": {
                name: {
                    "version": state.target.version,
                    "fingerprint": state.target.fingerprint,
                    "store": state.store,
                    "requests": state.requests,
                    "errors": state.errors,
                }
                for name, state in self.routes.items()
            },
        }

    async def _classify(self, state: _RouteState, body: bytes) -> Tuple[int, dict]:
        """Classify *body* on *state*'s model (inline or on the pool)."""
        target = state.target
        try:
            text = body.decode("utf-8")
        except UnicodeDecodeError as error:
            state.errors += 1
            return 400, {"error": str(error)}
        try:
            if self._pool is not None:
                payload = await self._dispatch(target, text)
            else:
                payload = classify_payload(state.model, text)
                payload["store"] = state.model.store_status
        except (XMLError, ValueError) as error:
            state.errors += 1
            return 400, {"error": str(error)}
        except Exception as error:  # noqa: BLE001 - a 500, not a crash
            state.errors += 1
            return 500, {"error": f"{type(error).__name__}: {error}"}
        state.requests += 1
        state.store = str(payload.get("store", state.store))
        state.latencies_ms.append(float(payload.get("latency_ms", 0.0)))
        payload["model"] = target.name
        payload["version"] = target.version
        return 200, payload

    async def _dispatch(self, target: RouteTarget, text: str) -> dict:
        """Run one classify on the worker pool (one crash-rebuild retry).

        A worker killed mid-call (OOM, signal) breaks the whole
        :class:`ProcessPoolExecutor`; the pool is rebuilt once and the
        call retried, so a single crash costs one request's latency, not
        the server.
        """
        loop = asyncio.get_running_loop()
        for attempt in (0, 1):
            try:
                return await loop.run_in_executor(
                    self._pool,
                    worker_classify,
                    target.directory,
                    target.fingerprint,
                    self.backend,
                    text,
                )
            except BrokenProcessPool:
                if attempt or self._draining:
                    raise
                self._pool.shutdown(wait=False)
                self._pool = ProcessPoolExecutor(max_workers=self.workers)
        raise RuntimeError("unreachable")  # pragma: no cover


class _BadRequest(Exception):
    """An unparseable request (answered 400, connection closed)."""


def serve_async(
    *,
    registry_path: Optional[str] = None,
    model_names: Optional[List[str]] = None,
    model_dirs: Optional[Dict[str, str]] = None,
    host: str = "127.0.0.1",
    port: int = 8000,
    workers: int = 0,
    backend: Optional[str] = None,
    poll_interval: Optional[float] = None,
    max_requests: Optional[int] = None,
    request_timeout: float = DEFAULT_REQUEST_TIMEOUT,
) -> None:
    """Run an :class:`AsyncModelServer` until it drains (CLI entry point).

    Exactly one of *registry_path* (route the registry's active models,
    optionally restricted to *model_names*) and *model_dirs* (static
    name -> directory routes) must be given; the rest mirrors the
    :class:`AsyncModelServer` constructor.
    """
    registry = None
    if registry_path is not None:
        from repro.store.registry import open_registry

        registry = open_registry(registry_path)
    router = ModelRouter(
        registry=registry, names=model_names, model_dirs=model_dirs
    )
    server = AsyncModelServer(
        router,
        host=host,
        port=port,
        workers=workers,
        backend=backend,
        poll_interval=poll_interval,
        max_requests=max_requests,
        request_timeout=request_timeout,
    )
    asyncio.run(server.run())
