"""Timing helpers used by the efficiency experiments."""

from __future__ import annotations

import statistics
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional


@dataclass
class TimingRecord:
    """Collected wall-clock samples for a named operation."""

    name: str
    samples: List[float] = field(default_factory=list)

    def add(self, seconds: float) -> None:
        self.samples.append(seconds)

    def total(self) -> float:
        return sum(self.samples)

    def mean(self) -> float:
        return statistics.fmean(self.samples) if self.samples else 0.0

    def minimum(self) -> float:
        return min(self.samples) if self.samples else 0.0

    def maximum(self) -> float:
        return max(self.samples) if self.samples else 0.0

    def count(self) -> int:
        return len(self.samples)


class Stopwatch:
    """Accumulates named timing records across an experiment run."""

    def __init__(self) -> None:
        self.records: Dict[str, TimingRecord] = {}

    @contextmanager
    def measure(self, name: str) -> Iterator[None]:
        """Time the body of the ``with`` block under the given name."""
        start = time.perf_counter()
        try:
            yield
        finally:
            self.record(name, time.perf_counter() - start)

    def record(self, name: str, seconds: float) -> None:
        """Add one sample to the named record."""
        self.records.setdefault(name, TimingRecord(name)).add(seconds)

    def time_callable(self, name: str, fn: Callable, *args, **kwargs):
        """Run ``fn(*args, **kwargs)`` while timing it; return its result."""
        with self.measure(name):
            return fn(*args, **kwargs)

    def summary(self) -> Dict[str, Dict[str, float]]:
        """Return per-record totals, means and extrema."""
        return {
            name: {
                "total": record.total(),
                "mean": record.mean(),
                "min": record.minimum(),
                "max": record.maximum(),
                "count": float(record.count()),
            }
            for name, record in self.records.items()
        }


def time_function(fn: Callable, *args, repeat: int = 1, **kwargs) -> Dict[str, float]:
    """Time ``repeat`` executions of *fn*; returns min/mean/max seconds."""
    if repeat < 1:
        raise ValueError(f"repeat must be >= 1, got {repeat}")
    samples = []
    result = None
    for _ in range(repeat):
        start = time.perf_counter()
        result = fn(*args, **kwargs)
        samples.append(time.perf_counter() - start)
    return {
        "min": min(samples),
        "mean": statistics.fmean(samples),
        "max": max(samples),
        "repeat": float(repeat),
        "last_result": result,
    }
