"""External cluster validity: Precision, Recall and overall F-measure.

The paper (Sec. 5.3) scores a clustering ``C = {C_1..C_K}`` against a
reference classification ``Gamma = {Gamma_1..Gamma_H}`` of the transaction
set ``S``::

    P_ij = |C_j ∩ Gamma_i| / |C_j|
    R_ij = |C_j ∩ Gamma_i| / |Gamma_i|
    F_ij = 2 P_ij R_ij / (P_ij + R_ij)

    F(C, Gamma) = (1/|S|) * sum_i |Gamma_i| * max_j F_ij

Higher is better; F lies in [0, 1].  Transactions assigned to the trash
cluster still count in ``|S|`` (they simply cannot contribute to any
``C_j ∩ Gamma_i``), so emptying clusters into the trash is penalised.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence


@dataclass(frozen=True)
class FMeasureBreakdown:
    """Per-class detail of the overall F-measure computation."""

    class_label: str
    class_size: int
    best_cluster: int
    precision: float
    recall: float
    f_score: float


def pairwise_f(precision: float, recall: float) -> float:
    """Harmonic mean of precision and recall (0 when both are 0)."""
    if precision + recall == 0.0:
        return 0.0
    return 2.0 * precision * recall / (precision + recall)


def f_measure_breakdown(
    clusters: Sequence[Sequence[str]],
    reference: Mapping[str, str],
    universe_size: Optional[int] = None,
) -> List[FMeasureBreakdown]:
    """Return, for every reference class, its best-matching cluster and scores.

    Parameters
    ----------
    clusters:
        The output partition as lists of transaction identifiers (trash
        excluded -- see :func:`overall_f_measure` for how the universe size
        handles unclustered transactions).
    reference:
        Mapping transaction identifier -> class label (the ground truth).
    universe_size:
        Unused here; accepted for signature symmetry.
    """
    # class -> members
    classes: Dict[str, List[str]] = {}
    for transaction_id, label in reference.items():
        classes.setdefault(label, []).append(transaction_id)

    cluster_sets = [set(cluster) for cluster in clusters]
    breakdown: List[FMeasureBreakdown] = []
    for label, members in sorted(classes.items()):
        member_set = set(members)
        best = FMeasureBreakdown(
            class_label=label,
            class_size=len(members),
            best_cluster=-1,
            precision=0.0,
            recall=0.0,
            f_score=0.0,
        )
        for cluster_index, cluster in enumerate(cluster_sets):
            if not cluster:
                continue
            intersection = len(cluster & member_set)
            if intersection == 0:
                continue
            precision = intersection / len(cluster)
            recall = intersection / len(member_set)
            score = pairwise_f(precision, recall)
            if score > best.f_score:
                best = FMeasureBreakdown(
                    class_label=label,
                    class_size=len(members),
                    best_cluster=cluster_index,
                    precision=precision,
                    recall=recall,
                    f_score=score,
                )
        breakdown.append(best)
    return breakdown


def overall_f_measure(
    clusters: Sequence[Sequence[str]],
    reference: Mapping[str, str],
) -> float:
    """Overall F-measure ``F(C, Gamma)`` of a clustering (Sec. 5.3).

    Parameters
    ----------
    clusters:
        Output partition as lists of transaction identifiers.  Pass the k
        content clusters only; transactions that appear in the reference but
        in no cluster (e.g. trash members) lower recall implicitly because
        class sizes come from the reference.
    reference:
        Mapping transaction identifier -> class label.

    Returns
    -------
    float
        Weighted sum over classes of the best per-class F score, normalised
        by the number of labelled transactions.
    """
    if not reference:
        return 0.0
    breakdown = f_measure_breakdown(clusters, reference)
    total = sum(entry.class_size for entry in breakdown)
    if total == 0:
        return 0.0
    weighted = sum(entry.class_size * entry.f_score for entry in breakdown)
    return weighted / total


def precision_recall_matrix(
    clusters: Sequence[Sequence[str]],
    reference: Mapping[str, str],
) -> Dict[str, List[Dict[str, float]]]:
    """Return the full P_ij / R_ij / F_ij matrix keyed by class label.

    Mostly used by tests and notebooks to inspect how classes map to
    clusters; each entry of the per-class list corresponds to one cluster.
    """
    classes: Dict[str, set] = {}
    for transaction_id, label in reference.items():
        classes.setdefault(label, set()).add(transaction_id)
    matrix: Dict[str, List[Dict[str, float]]] = {}
    for label, member_set in sorted(classes.items()):
        row = []
        for cluster in clusters:
            cluster_set = set(cluster)
            intersection = len(cluster_set & member_set)
            precision = intersection / len(cluster_set) if cluster_set else 0.0
            recall = intersection / len(member_set) if member_set else 0.0
            row.append(
                {
                    "precision": precision,
                    "recall": recall,
                    "f": pairwise_f(precision, recall),
                }
            )
        matrix[label] = row
    return matrix
