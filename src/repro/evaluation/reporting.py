"""Plain-text rendering of experiment results as tables and series.

The benchmark harness regenerates every table and figure of the paper; since
the environment is head-less, "figures" are rendered as aligned text series
(node count vs. runtime) that can be eyeballed or diffed, and tables as
aligned text grids in the same layout as the paper's Tables 1-2.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    title: Optional[str] = None,
) -> str:
    """Render rows as an aligned, pipe-separated text table."""
    columns = len(headers)
    normalised_rows: List[List[str]] = []
    for row in rows:
        cells = [_format_cell(cell) for cell in row]
        if len(cells) < columns:
            cells += [""] * (columns - len(cells))
        normalised_rows.append(cells[:columns])
    widths = [len(str(header)) for header in headers]
    for row in normalised_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        return " | ".join(cell.ljust(widths[index]) for index, cell in enumerate(cells))

    lines = []
    if title:
        lines.append(title)
    lines.append(render_row([str(header) for header in headers]))
    lines.append("-+-".join("-" * width for width in widths))
    lines.extend(render_row(row) for row in normalised_rows)
    return "\n".join(lines)


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        return f"{value:.3f}"
    return str(value)


def format_series(
    series: Mapping[int, float],
    x_label: str = "nodes",
    y_label: str = "value",
    title: Optional[str] = None,
    bar_width: int = 40,
) -> str:
    """Render an x->y mapping as a text series with proportional bars.

    Used for the "figures" of the paper (runtime vs. number of nodes): each
    line shows the x value, the y value and a bar proportional to y, so the
    hyperbolic-then-flat shape of Fig. 7 is visible directly in the report.
    """
    if not series:
        return title or ""
    maximum = max(series.values()) or 1.0
    lines = []
    if title:
        lines.append(title)
    lines.append(f"{x_label:>8} | {y_label}")
    for x in sorted(series.keys()):
        y = series[x]
        bar = "#" * max(1, int(round(bar_width * y / maximum))) if y > 0 else ""
        lines.append(f"{x:>8} | {y:>12.4f} {bar}")
    return "\n".join(lines)


def format_accuracy_table(
    results: Mapping[str, Mapping[int, float]],
    cluster_counts: Optional[Mapping[str, int]] = None,
    title: Optional[str] = None,
) -> str:
    """Render per-dataset accuracy-vs-nodes results in the layout of Tables 1-2.

    Parameters
    ----------
    results:
        Mapping dataset name -> {node count: F-measure}.
    cluster_counts:
        Optional mapping dataset name -> number of clusters (the "# of
        clusters" column of the paper's tables).
    """
    headers = ["set", "# of clusters", "# of nodes", "F-measure (avg)"]
    rows: List[List[object]] = []
    for dataset in results:
        per_nodes = results[dataset]
        clusters = cluster_counts.get(dataset, "") if cluster_counts else ""
        first = True
        for nodes in sorted(per_nodes.keys()):
            rows.append(
                [
                    dataset if first else "",
                    clusters if first else "",
                    nodes,
                    per_nodes[nodes],
                ]
            )
            first = False
    return format_table(headers, rows, title=title)


def comparison_table(
    paper_values: Mapping[str, float],
    measured_values: Mapping[str, float],
    title: Optional[str] = None,
) -> str:
    """Side-by-side paper-vs-measured table used in EXPERIMENTS.md."""
    headers = ["quantity", "paper", "measured", "delta"]
    rows = []
    for key in paper_values:
        paper = paper_values[key]
        measured = measured_values.get(key, float("nan"))
        rows.append([key, paper, measured, measured - paper])
    return format_table(headers, rows, title=title)
