"""Additional external cluster validity indices.

Beyond the paper's F-measure, the reproduction reports purity, normalised
mutual information (NMI) and the adjusted Rand index (ARI) so ablation
studies can cross-check conclusions against indices with different biases.
All functions take the clustering as lists of transaction identifiers and the
reference as a mapping from identifier to class label, like
:func:`repro.evaluation.fmeasure.overall_f_measure`.
"""

from __future__ import annotations

import math
from collections import Counter
from typing import Dict, List, Mapping, Sequence, Tuple


def _contingency(
    clusters: Sequence[Sequence[str]], reference: Mapping[str, str]
) -> Tuple[Dict[Tuple[int, str], int], Counter, Counter, int]:
    """Build the cluster x class contingency table over labelled ids."""
    table: Dict[Tuple[int, str], int] = {}
    cluster_sizes: Counter = Counter()
    class_sizes: Counter = Counter()
    total = 0
    for cluster_index, cluster in enumerate(clusters):
        for transaction_id in cluster:
            label = reference.get(transaction_id)
            if label is None:
                continue
            table[(cluster_index, label)] = table.get((cluster_index, label), 0) + 1
            cluster_sizes[cluster_index] += 1
            class_sizes[label] += 1
            total += 1
    return table, cluster_sizes, class_sizes, total


def purity(clusters: Sequence[Sequence[str]], reference: Mapping[str, str]) -> float:
    """Cluster purity: fraction of objects in their cluster's majority class."""
    table, cluster_sizes, _, total = _contingency(clusters, reference)
    if total == 0:
        return 0.0
    majority_sum = 0
    for cluster_index in cluster_sizes:
        best = max(
            (count for (c, _), count in table.items() if c == cluster_index),
            default=0,
        )
        majority_sum += best
    return majority_sum / total


def normalized_mutual_information(
    clusters: Sequence[Sequence[str]], reference: Mapping[str, str]
) -> float:
    """NMI with arithmetic-mean normalisation (0 when either entropy is 0)."""
    table, cluster_sizes, class_sizes, total = _contingency(clusters, reference)
    if total == 0:
        return 0.0
    mutual_information = 0.0
    for (cluster_index, label), count in table.items():
        p_joint = count / total
        p_cluster = cluster_sizes[cluster_index] / total
        p_class = class_sizes[label] / total
        mutual_information += p_joint * math.log(p_joint / (p_cluster * p_class))

    def entropy(sizes: Counter) -> float:
        return -sum(
            (size / total) * math.log(size / total) for size in sizes.values() if size
        )

    h_cluster = entropy(cluster_sizes)
    h_class = entropy(class_sizes)
    denominator = (h_cluster + h_class) / 2.0
    if denominator == 0.0:
        return 0.0
    return max(0.0, min(1.0, mutual_information / denominator))


def _comb2(n: int) -> float:
    return n * (n - 1) / 2.0


def adjusted_rand_index(
    clusters: Sequence[Sequence[str]], reference: Mapping[str, str]
) -> float:
    """Adjusted Rand index (1 for identical partitions, ~0 for random ones)."""
    table, cluster_sizes, class_sizes, total = _contingency(clusters, reference)
    if total == 0:
        return 0.0
    sum_comb_table = sum(_comb2(count) for count in table.values())
    sum_comb_clusters = sum(_comb2(size) for size in cluster_sizes.values())
    sum_comb_classes = sum(_comb2(size) for size in class_sizes.values())
    total_comb = _comb2(total)
    if total_comb == 0:
        return 0.0
    expected = sum_comb_clusters * sum_comb_classes / total_comb
    maximum = (sum_comb_clusters + sum_comb_classes) / 2.0
    if maximum == expected:
        return 1.0 if sum_comb_table == expected else 0.0
    return (sum_comb_table - expected) / (maximum - expected)


def clustering_report(
    clusters: Sequence[Sequence[str]], reference: Mapping[str, str]
) -> Dict[str, float]:
    """Return F-measure, purity, NMI and ARI in one dictionary."""
    from repro.evaluation.fmeasure import overall_f_measure

    return {
        "f_measure": overall_f_measure(clusters, reference),
        "purity": purity(clusters, reference),
        "nmi": normalized_mutual_information(clusters, reference),
        "ari": adjusted_rand_index(clusters, reference),
    }
