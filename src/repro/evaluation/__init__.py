"""Cluster validity measures, timing utilities and report rendering."""

from repro.evaluation.fmeasure import (
    FMeasureBreakdown,
    f_measure_breakdown,
    overall_f_measure,
    pairwise_f,
    precision_recall_matrix,
)
from repro.evaluation.metrics import (
    adjusted_rand_index,
    clustering_report,
    normalized_mutual_information,
    purity,
)
from repro.evaluation.reporting import (
    comparison_table,
    format_accuracy_table,
    format_series,
    format_table,
)
from repro.evaluation.timing import Stopwatch, TimingRecord, time_function

__all__ = [
    "overall_f_measure",
    "f_measure_breakdown",
    "pairwise_f",
    "precision_recall_matrix",
    "FMeasureBreakdown",
    "purity",
    "normalized_mutual_information",
    "adjusted_rand_index",
    "clustering_report",
    "Stopwatch",
    "TimingRecord",
    "time_function",
    "format_table",
    "format_series",
    "format_accuracy_table",
    "comparison_table",
]
