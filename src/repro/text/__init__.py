"""Text processing substrate: tokenization, stemming, vectors, ttf.itf."""

from repro.text.preprocess import (
    DEFAULT_PREPROCESSOR,
    PreprocessingConfig,
    TextPreprocessor,
)
from repro.text.stemmer import PorterStemmer, stem, stem_tokens
from repro.text.stopwords import DOMAIN_STOPWORDS, ENGLISH_STOPWORDS, default_stopwords
from repro.text.tokenize import character_ngrams, tokenize
from repro.text.vector import SparseVector, centroid_vector, merge_vectors
from repro.text.vocabulary import FrozenVocabulary, Vocabulary
from repro.text.weighting import (
    CorpusTermStatistics,
    TCURecord,
    TfIdfWeighter,
    TtfItfWeighter,
)

__all__ = [
    "tokenize",
    "character_ngrams",
    "ENGLISH_STOPWORDS",
    "DOMAIN_STOPWORDS",
    "default_stopwords",
    "PorterStemmer",
    "stem",
    "stem_tokens",
    "SparseVector",
    "merge_vectors",
    "centroid_vector",
    "Vocabulary",
    "FrozenVocabulary",
    "PreprocessingConfig",
    "TextPreprocessor",
    "DEFAULT_PREPROCESSOR",
    "CorpusTermStatistics",
    "TCURecord",
    "TtfItfWeighter",
    "TfIdfWeighter",
]
