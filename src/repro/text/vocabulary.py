"""Term vocabulary: a bidirectional mapping between index terms and ids.

The vocabulary ``V`` (paper Sec. 4.1.2) is the set of index terms extracted
from all TCUs in the collection of tree tuples; TCU vectors are indexed by
the integer identifiers assigned here.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional


class Vocabulary:
    """An append-only bidirectional term <-> id mapping.

    Identifiers are assigned densely starting from 0 in order of first
    appearance, which makes the mapping deterministic for a fixed corpus
    traversal order (important for reproducible experiments).
    """

    def __init__(self, terms: Optional[Iterable[str]] = None) -> None:
        self._term_to_id: Dict[str, int] = {}
        self._id_to_term: List[str] = []
        if terms:
            for term in terms:
                self.add(term)

    # ------------------------------------------------------------------ #
    def add(self, term: str) -> int:
        """Return the identifier of *term*, adding it if unseen."""
        term_id = self._term_to_id.get(term)
        if term_id is None:
            term_id = len(self._id_to_term)
            self._term_to_id[term] = term_id
            self._id_to_term.append(term)
        return term_id

    def add_all(self, terms: Iterable[str]) -> List[int]:
        """Add every term in *terms*; return their identifiers in order."""
        return [self.add(term) for term in terms]

    def id_of(self, term: str) -> Optional[int]:
        """Return the identifier of *term*, or ``None`` when unknown."""
        return self._term_to_id.get(term)

    def term_of(self, term_id: int) -> str:
        """Return the term with identifier *term_id* (raises ``IndexError``)."""
        return self._id_to_term[term_id]

    def __contains__(self, term: str) -> bool:
        return term in self._term_to_id

    def __len__(self) -> int:
        return len(self._id_to_term)

    def __iter__(self) -> Iterator[str]:
        return iter(self._id_to_term)

    def terms(self) -> List[str]:
        """Return all terms in identifier order."""
        return list(self._id_to_term)

    def freeze(self) -> "FrozenVocabulary":
        """Return an immutable snapshot of the current vocabulary."""
        return FrozenVocabulary(self._id_to_term)


class FrozenVocabulary:
    """Immutable vocabulary snapshot; lookups of unknown terms return None."""

    def __init__(self, terms: Iterable[str]) -> None:
        self._id_to_term: List[str] = list(terms)
        self._term_to_id: Dict[str, int] = {
            term: idx for idx, term in enumerate(self._id_to_term)
        }

    def id_of(self, term: str) -> Optional[int]:
        return self._term_to_id.get(term)

    def term_of(self, term_id: int) -> str:
        return self._id_to_term[term_id]

    def __contains__(self, term: str) -> bool:
        return term in self._term_to_id

    def __len__(self) -> int:
        return len(self._id_to_term)

    def __iter__(self) -> Iterator[str]:
        return iter(self._id_to_term)
