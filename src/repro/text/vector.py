"""Sparse term vectors for textual content units (TCUs).

TCU vectors are typically extremely sparse (Sec. 4.1.2: "proper structures
can be exploited to drastically reduce the actual dimensionality of each TCU
vector"), so the representation is a dictionary mapping term identifiers to
weights.  The class provides exactly the operations the clustering algorithms
need: dot product, norm, cosine similarity, scaling and merging.
"""

from __future__ import annotations

import math
from typing import Dict, Iterable, Iterator, Mapping, Tuple


class SparseVector:
    """An immutable-ish sparse vector keyed by integer term identifiers.

    Zero weights are never stored; the empty vector has norm 0 and a cosine
    similarity of 0 against everything (including itself), matching the
    convention used for empty TCUs.
    """

    __slots__ = ("_weights", "_norm")

    def __init__(self, weights: Mapping[int, float] | None = None) -> None:
        self._weights: Dict[int, float] = {}
        if weights:
            for term, weight in weights.items():
                if weight:
                    self._weights[int(term)] = float(weight)
        self._norm: float | None = None

    # ------------------------------------------------------------------ #
    # Basic container protocol
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._weights)

    def __bool__(self) -> bool:
        return bool(self._weights)

    def __iter__(self) -> Iterator[Tuple[int, float]]:
        return iter(self._weights.items())

    def __contains__(self, term: int) -> bool:
        return term in self._weights

    def get(self, term: int, default: float = 0.0) -> float:
        return self._weights.get(term, default)

    def items(self) -> Iterable[Tuple[int, float]]:
        return self._weights.items()

    def terms(self) -> Iterable[int]:
        return self._weights.keys()

    def to_dict(self) -> Dict[int, float]:
        """Return a copy of the underlying term->weight mapping."""
        return dict(self._weights)

    # ------------------------------------------------------------------ #
    # Linear algebra
    # ------------------------------------------------------------------ #
    def norm(self) -> float:
        """Return the Euclidean norm (cached after the first call)."""
        if self._norm is None:
            self._norm = math.sqrt(sum(w * w for w in self._weights.values()))
        return self._norm

    def dot(self, other: "SparseVector") -> float:
        """Return the dot product with *other* (iterates the smaller vector)."""
        if len(self._weights) > len(other._weights):
            return other.dot(self)
        total = 0.0
        other_weights = other._weights
        for term, weight in self._weights.items():
            other_weight = other_weights.get(term)
            if other_weight is not None:
                total += weight * other_weight
        return total

    def cosine(self, other: "SparseVector") -> float:
        """Return the cosine similarity with *other* (0 when either is empty)."""
        denominator = self.norm() * other.norm()
        if denominator == 0.0:
            return 0.0
        value = self.dot(other) / denominator
        # numerical guard: cosine is mathematically within [0, 1] for
        # non-negative weights, clamp tiny floating point excursions.
        if value > 1.0:
            return 1.0
        if value < 0.0:
            return 0.0
        return value

    def scaled(self, factor: float) -> "SparseVector":
        """Return a new vector with every weight multiplied by *factor*."""
        return SparseVector({t: w * factor for t, w in self._weights.items()})

    def added(self, other: "SparseVector") -> "SparseVector":
        """Return the element-wise sum of this vector and *other*."""
        merged = dict(self._weights)
        for term, weight in other._weights.items():
            merged[term] = merged.get(term, 0.0) + weight
        return SparseVector(merged)

    def normalized(self) -> "SparseVector":
        """Return the unit-norm version of this vector (empty stays empty)."""
        norm = self.norm()
        if norm == 0.0:
            return SparseVector()
        return self.scaled(1.0 / norm)

    # ------------------------------------------------------------------ #
    # Equality / representation
    # ------------------------------------------------------------------ #
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, SparseVector):
            return NotImplemented
        return self._weights == other._weights

    def __hash__(self) -> int:
        return hash(frozenset(self._weights.items()))

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        preview = dict(sorted(self._weights.items())[:4])
        return f"SparseVector({len(self._weights)} terms, {preview}...)"


def merge_vectors(vectors: Iterable[SparseVector]) -> SparseVector:
    """Return the element-wise sum of all *vectors* (empty input -> empty)."""
    merged: Dict[int, float] = {}
    for vector in vectors:
        for term, weight in vector.items():
            merged[term] = merged.get(term, 0.0) + weight
    return SparseVector(merged)


def centroid_vector(vectors: Iterable[SparseVector]) -> SparseVector:
    """Return the arithmetic-mean vector of *vectors*."""
    vectors = list(vectors)
    if not vectors:
        return SparseVector()
    return merge_vectors(vectors).scaled(1.0 / len(vectors))
