"""A from-scratch implementation of the Porter stemming algorithm.

Porter, M.F. (1980), *An algorithm for suffix stripping*.  The implementation
follows the original five-step description; it is intentionally dependency
free so the reproduction is self-contained.
"""

from __future__ import annotations

from typing import Iterable, List

_VOWELS = "aeiou"


def _is_consonant(word: str, index: int) -> bool:
    """Return True when the character at *index* acts as a consonant."""
    ch = word[index]
    if ch in _VOWELS:
        return False
    if ch == "y":
        if index == 0:
            return True
        return not _is_consonant(word, index - 1)
    return True


def _measure(stem: str) -> int:
    """Return m, the number of VC sequences in *stem* ([C](VC)^m[V])."""
    forms = []
    for i in range(len(stem)):
        forms.append("c" if _is_consonant(stem, i) else "v")
    collapsed = "".join(forms)
    # collapse runs
    run = []
    for ch in collapsed:
        if not run or run[-1] != ch:
            run.append(ch)
    pattern = "".join(run)
    return pattern.count("vc")


def _contains_vowel(stem: str) -> bool:
    return any(not _is_consonant(stem, i) for i in range(len(stem)))


def _ends_double_consonant(word: str) -> bool:
    return (
        len(word) >= 2
        and word[-1] == word[-2]
        and _is_consonant(word, len(word) - 1)
    )


def _ends_cvc(word: str) -> bool:
    """True for a consonant-vowel-consonant ending where the final consonant
    is not w, x or y (the *o condition of Porter's paper)."""
    if len(word) < 3:
        return False
    if not _is_consonant(word, len(word) - 1):
        return False
    if _is_consonant(word, len(word) - 2):
        return False
    if not _is_consonant(word, len(word) - 3):
        return False
    return word[-1] not in "wxy"


#: Shared word -> stem memo.  Stemming is a pure function of the token, so
#: one process-wide cache is safe for every :class:`PorterStemmer`
#: instance; corpora draw from a bounded vocabulary, so the hit rate in the
#: serving hot path is high (profiling put stemming at ~25% of a classify
#: call before the memo).  Cleared wholesale when it reaches
#: :data:`_STEM_CACHE_CAP` entries -- a crude bound, but stems are tiny and
#: the cap is far above any realistic vocabulary.
_STEM_CACHE: dict = {}
_STEM_CACHE_CAP = 1 << 18


class PorterStemmer:
    """Stateless Porter stemmer; use :meth:`stem` or the module-level helper."""

    # ------------------------------------------------------------------ #
    def stem(self, word: str) -> str:
        """Return the Porter stem of *word* (already lower-cased tokens)."""
        if len(word) <= 2:
            return word
        cached = _STEM_CACHE.get(word)
        if cached is not None:
            return cached
        stemmed = self._stem_uncached(word)
        if len(_STEM_CACHE) >= _STEM_CACHE_CAP:
            _STEM_CACHE.clear()
        _STEM_CACHE[word] = stemmed
        return stemmed

    def _stem_uncached(self, word: str) -> str:
        """The memo-less Porter pipeline (steps 1a through 5b)."""
        word = self._step1a(word)
        word = self._step1b(word)
        word = self._step1c(word)
        word = self._step2(word)
        word = self._step3(word)
        word = self._step4(word)
        word = self._step5a(word)
        word = self._step5b(word)
        return word

    # -- step 1 ----------------------------------------------------------- #
    @staticmethod
    def _step1a(word: str) -> str:
        if word.endswith("sses"):
            return word[:-2]
        if word.endswith("ies"):
            return word[:-2]
        if word.endswith("ss"):
            return word
        if word.endswith("s"):
            return word[:-1]
        return word

    def _step1b(self, word: str) -> str:
        if word.endswith("eed"):
            stem = word[:-3]
            if _measure(stem) > 0:
                return word[:-1]
            return word
        flag = False
        if word.endswith("ed") and _contains_vowel(word[:-2]):
            word = word[:-2]
            flag = True
        elif word.endswith("ing") and _contains_vowel(word[:-3]):
            word = word[:-3]
            flag = True
        if flag:
            if word.endswith(("at", "bl", "iz")):
                return word + "e"
            if _ends_double_consonant(word) and not word.endswith(("l", "s", "z")):
                return word[:-1]
            if _measure(word) == 1 and _ends_cvc(word):
                return word + "e"
        return word

    @staticmethod
    def _step1c(word: str) -> str:
        if word.endswith("y") and _contains_vowel(word[:-1]):
            return word[:-1] + "i"
        return word

    # -- step 2 ----------------------------------------------------------- #
    _STEP2_SUFFIXES = [
        ("ational", "ate"), ("tional", "tion"), ("enci", "ence"), ("anci", "ance"),
        ("izer", "ize"), ("abli", "able"), ("alli", "al"), ("entli", "ent"),
        ("eli", "e"), ("ousli", "ous"), ("ization", "ize"), ("ation", "ate"),
        ("ator", "ate"), ("alism", "al"), ("iveness", "ive"), ("fulness", "ful"),
        ("ousness", "ous"), ("aliti", "al"), ("iviti", "ive"), ("biliti", "ble"),
    ]

    def _step2(self, word: str) -> str:
        for suffix, replacement in self._STEP2_SUFFIXES:
            if word.endswith(suffix):
                stem = word[: -len(suffix)]
                if _measure(stem) > 0:
                    return stem + replacement
                return word
        return word

    # -- step 3 ----------------------------------------------------------- #
    _STEP3_SUFFIXES = [
        ("icate", "ic"), ("ative", ""), ("alize", "al"), ("iciti", "ic"),
        ("ical", "ic"), ("ful", ""), ("ness", ""),
    ]

    def _step3(self, word: str) -> str:
        for suffix, replacement in self._STEP3_SUFFIXES:
            if word.endswith(suffix):
                stem = word[: -len(suffix)]
                if _measure(stem) > 0:
                    return stem + replacement
                return word
        return word

    # -- step 4 ----------------------------------------------------------- #
    _STEP4_SUFFIXES = [
        "al", "ance", "ence", "er", "ic", "able", "ible", "ant", "ement",
        "ment", "ent", "ion", "ou", "ism", "ate", "iti", "ous", "ive", "ize",
    ]

    def _step4(self, word: str) -> str:
        for suffix in self._STEP4_SUFFIXES:
            if word.endswith(suffix):
                stem = word[: -len(suffix)]
                if suffix == "ion" and not stem.endswith(("s", "t")):
                    return word
                if _measure(stem) > 1:
                    return stem
                return word
        return word

    # -- step 5 ----------------------------------------------------------- #
    @staticmethod
    def _step5a(word: str) -> str:
        if word.endswith("e"):
            stem = word[:-1]
            m = _measure(stem)
            if m > 1:
                return stem
            if m == 1 and not _ends_cvc(stem):
                return stem
        return word

    @staticmethod
    def _step5b(word: str) -> str:
        if _measure(word) > 1 and _ends_double_consonant(word) and word.endswith("l"):
            return word[:-1]
        return word


_DEFAULT_STEMMER = PorterStemmer()


def stem(word: str) -> str:
    """Stem a single token with the module-level :class:`PorterStemmer`."""
    return _DEFAULT_STEMMER.stem(word)


def stem_tokens(tokens: Iterable[str]) -> List[str]:
    """Stem every token in *tokens*, preserving order and duplicates."""
    return [_DEFAULT_STEMMER.stem(token) for token in tokens]
