"""Text preprocessing pipeline for textual content units (TCUs).

The pipeline mirrors the one referenced by the paper (footnote 1, Sec.
4.1.2): lexical analysis, stopword removal and word stemming.  It is exposed
as a configurable :class:`TextPreprocessor` so ablation experiments can turn
individual stages on and off.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import FrozenSet, List, Optional

from repro.text.stemmer import PorterStemmer
from repro.text.stopwords import default_stopwords
from repro.text.tokenize import tokenize


@dataclass(frozen=True)
class PreprocessingConfig:
    """Configuration of the TCU preprocessing pipeline."""

    #: Minimum token length kept by the lexical analyser.
    min_token_length: int = 2
    #: Keep purely numeric tokens (disabled by default).
    keep_numbers: bool = False
    #: Remove stopwords (enabled by default).
    remove_stopwords: bool = True
    #: Apply Porter stemming (enabled by default).
    stem: bool = True
    #: Optional custom stopword set; ``None`` uses the built-in list.
    stopwords: Optional[FrozenSet[str]] = None


class TextPreprocessor:
    """Applies lexical analysis, stopword removal and stemming to raw text."""

    def __init__(self, config: PreprocessingConfig | None = None) -> None:
        self.config = config or PreprocessingConfig()
        self._stopwords = (
            self.config.stopwords
            if self.config.stopwords is not None
            else default_stopwords()
        )
        self._stemmer = PorterStemmer()

    def process(self, text: str) -> List[str]:
        """Return the list of index terms extracted from *text*.

        Order and duplicates are preserved because term frequency inside the
        TCU (``tf`` in the ttf.itf formula) is computed downstream.
        """
        tokens = tokenize(
            text,
            min_length=self.config.min_token_length,
            keep_numbers=self.config.keep_numbers,
        )
        if self.config.remove_stopwords:
            tokens = [token for token in tokens if token not in self._stopwords]
        if self.config.stem:
            tokens = [self._stemmer.stem(token) for token in tokens]
        return tokens

    def process_many(self, texts: List[str]) -> List[List[str]]:
        """Apply :meth:`process` to every string in *texts*."""
        return [self.process(text) for text in texts]


#: A module-level preprocessor with default settings, shared where no custom
#: configuration is needed (the object is stateless apart from its config).
DEFAULT_PREPROCESSOR = TextPreprocessor()
