"""Term weighting for TCUs: the ttf.itf scheme (paper Sec. 4.1.2).

The *Tree tuple Term Frequency -- Inverse Tree tuple Frequency* weight of a
term ``w_j`` occurring in a TCU ``u_i`` of a tree tuple ``tau`` extracted
from tree ``XT`` is defined as::

    ttf.itf(w_j, u_i | tau) = tf(w_j, u_i)
                              * exp(n_{j,tau} / N_tau)
                              * (n_{j,XT} / N_XT)
                              * ln(N_T / n_{j,T})

where ``tf`` is the number of occurrences of the term inside the TCU, ``N_x``
is the number of TCUs in scope ``x`` and ``n_{j,x}`` is the number of TCUs in
scope ``x`` that contain the term; the scopes are the tree tuple (``tau``),
the document tree (``XT``) and the whole collection of tree tuples (``T``).

The weight therefore rewards terms that are frequent inside the TCU, popular
across the TCUs of the same transaction and of the same document, and rare
across the collection.  A classic ``tf.idf`` weighter is also provided for
ablation experiments.
"""

from __future__ import annotations

import math
from collections import Counter
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Sequence, Tuple

from repro.text.vector import SparseVector
from repro.text.vocabulary import Vocabulary


@dataclass
class TCURecord:
    """A preprocessed TCU together with its owning tuple and document."""

    tcu_id: int
    tuple_id: str
    doc_id: str
    terms: Tuple[str, ...]


class CorpusTermStatistics:
    """Accumulates TCU-level term statistics at the three ttf.itf scopes.

    The accumulator is filled once per corpus (one :meth:`add_tcu` call per
    TCU) and then queried by :class:`TtfItfWeighter`.  All counters operate
    on *TCU containment* -- i.e. they count in how many TCUs of a scope a
    term occurs -- matching the paper's ``n_{j,*} / N_*`` definitions.
    """

    def __init__(self) -> None:
        self.vocabulary = Vocabulary()
        self.records: List[TCURecord] = []
        # number of TCUs per scope
        self.tcus_per_tuple: Dict[str, int] = {}
        self.tcus_per_doc: Dict[str, int] = {}
        self.total_tcus: int = 0
        # per-term containment counters per scope
        self._term_tcus_per_tuple: Dict[Tuple[str, str], int] = {}
        self._term_tcus_per_doc: Dict[Tuple[str, str], int] = {}
        self._term_tcus_collection: Dict[str, int] = {}

    # ------------------------------------------------------------------ #
    def add_tcu(self, tuple_id: str, doc_id: str, terms: Sequence[str]) -> TCURecord:
        """Register one preprocessed TCU and return its record."""
        record = TCURecord(
            tcu_id=len(self.records),
            tuple_id=tuple_id,
            doc_id=doc_id,
            terms=tuple(terms),
        )
        self.records.append(record)
        self.total_tcus += 1
        self.tcus_per_tuple[tuple_id] = self.tcus_per_tuple.get(tuple_id, 0) + 1
        self.tcus_per_doc[doc_id] = self.tcus_per_doc.get(doc_id, 0) + 1
        for term in set(terms):
            self.vocabulary.add(term)
            key_tuple = (tuple_id, term)
            key_doc = (doc_id, term)
            self._term_tcus_per_tuple[key_tuple] = (
                self._term_tcus_per_tuple.get(key_tuple, 0) + 1
            )
            self._term_tcus_per_doc[key_doc] = (
                self._term_tcus_per_doc.get(key_doc, 0) + 1
            )
            self._term_tcus_collection[term] = (
                self._term_tcus_collection.get(term, 0) + 1
            )
        return record

    # ------------------------------------------------------------------ #
    # Scope queries
    # ------------------------------------------------------------------ #
    def tcus_in_tuple(self, tuple_id: str) -> int:
        """``N_tau``: number of TCUs of tree tuple *tuple_id*."""
        return self.tcus_per_tuple.get(tuple_id, 0)

    def tcus_in_doc(self, doc_id: str) -> int:
        """``N_XT``: number of TCUs of document *doc_id*."""
        return self.tcus_per_doc.get(doc_id, 0)

    def tcus_in_collection(self) -> int:
        """``N_T``: number of TCUs in the whole collection."""
        return self.total_tcus

    def term_tcus_in_tuple(self, term: str, tuple_id: str) -> int:
        """``n_{j,tau}``: TCUs of the tuple containing *term*."""
        return self._term_tcus_per_tuple.get((tuple_id, term), 0)

    def term_tcus_in_doc(self, term: str, doc_id: str) -> int:
        """``n_{j,XT}``: TCUs of the document containing *term*."""
        return self._term_tcus_per_doc.get((doc_id, term), 0)

    def term_tcus_in_collection(self, term: str) -> int:
        """``n_{j,T}``: TCUs of the collection containing *term*."""
        return self._term_tcus_collection.get(term, 0)

    def vocabulary_size(self) -> int:
        return len(self.vocabulary)


class TtfItfWeighter:
    """Computes ttf.itf-weighted :class:`SparseVector` representations."""

    def __init__(self, statistics: CorpusTermStatistics) -> None:
        self.statistics = statistics

    def weight(self, term: str, tf: int, tuple_id: str, doc_id: str) -> float:
        """Return the ttf.itf weight of *term* given its in-TCU frequency."""
        stats = self.statistics
        n_tau = stats.tcus_in_tuple(tuple_id)
        n_doc = stats.tcus_in_doc(doc_id)
        n_coll = stats.tcus_in_collection()
        if tf <= 0 or n_tau == 0 or n_doc == 0 or n_coll == 0:
            return 0.0
        n_j_tau = stats.term_tcus_in_tuple(term, tuple_id)
        n_j_doc = stats.term_tcus_in_doc(term, doc_id)
        n_j_coll = stats.term_tcus_in_collection(term)
        if n_j_coll == 0:
            return 0.0
        tuple_popularity = math.exp(n_j_tau / n_tau)
        doc_popularity = n_j_doc / n_doc
        rarity = math.log(n_coll / n_j_coll) if n_coll > n_j_coll else 0.0
        return tf * tuple_popularity * doc_popularity * rarity

    def vector(self, terms: Sequence[str], tuple_id: str, doc_id: str) -> SparseVector:
        """Return the ttf.itf-weighted TCU vector of a term sequence."""
        counts = Counter(terms)
        weights: Dict[int, float] = {}
        for term, tf in counts.items():
            term_id = self.statistics.vocabulary.id_of(term)
            if term_id is None:
                continue
            value = self.weight(term, tf, tuple_id, doc_id)
            if value > 0.0:
                weights[term_id] = value
        return SparseVector(weights)


class TfIdfWeighter:
    """Classic tf.idf weighter over TCUs, provided for ablation experiments.

    ``idf(term) = ln(N_T / n_{j,T})`` with the same TCU-containment counters
    used by ttf.itf; the tuple- and document-level popularity factors are
    simply dropped.
    """

    def __init__(self, statistics: CorpusTermStatistics) -> None:
        self.statistics = statistics

    def vector(self, terms: Sequence[str], tuple_id: str = "", doc_id: str = "") -> SparseVector:
        counts = Counter(terms)
        n_coll = self.statistics.tcus_in_collection()
        weights: Dict[int, float] = {}
        for term, tf in counts.items():
            term_id = self.statistics.vocabulary.id_of(term)
            if term_id is None:
                continue
            n_j = self.statistics.term_tcus_in_collection(term)
            if n_j == 0 or n_coll <= n_j:
                idf = 0.0
            else:
                idf = math.log(n_coll / n_j)
            if tf * idf > 0.0:
                weights[term_id] = tf * idf
        return SparseVector(weights)
