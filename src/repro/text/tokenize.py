"""Lexical analysis of textual content units (TCUs).

The paper preprocesses every ``#PCDATA`` element content / attribute value
with "language-specific operations such as lexical analysis, removal of
stopwords and word stemming" (Sec. 4.1.2, footnote 1).  This module provides
the lexical-analysis half: lower-casing, splitting on non-alphanumeric
characters, and filtering of tokens that are too short or purely numeric.
"""

from __future__ import annotations

import re
from typing import List

_TOKEN_RE = re.compile(r"[A-Za-z][A-Za-z0-9']*|[0-9]+")


def tokenize(text: str, min_length: int = 2, keep_numbers: bool = False) -> List[str]:
    """Split raw text into lower-cased tokens.

    Parameters
    ----------
    text:
        Raw TCU text.
    min_length:
        Minimum token length; shorter alphabetic tokens are discarded.
    keep_numbers:
        When ``False`` (default) purely numeric tokens are dropped -- numbers
        such as years or page ranges behave as identifiers, not as terms, in
        the paper's corpora.

    Returns
    -------
    list of str
        Tokens in order of occurrence (duplicates preserved).
    """
    if not text:
        return []
    tokens: List[str] = []
    for match in _TOKEN_RE.finditer(text.lower()):
        token = match.group(0)
        if token.isdigit():
            if keep_numbers:
                tokens.append(token)
            continue
        token = token.strip("'")
        if len(token) >= min_length:
            tokens.append(token)
    return tokens


def character_ngrams(text: str, n: int = 3) -> List[str]:
    """Return the character n-grams of *text* (used by ablation experiments
    on alternative content representations)."""
    compact = re.sub(r"\s+", " ", text.lower()).strip()
    if len(compact) < n:
        return [compact] if compact else []
    return [compact[i:i + n] for i in range(len(compact) - n + 1)]
