"""repro -- a from-scratch reproduction of *Collaborative clustering of XML
documents* (Greco, Gullo, Ponti, Tagarelli; JCSS 2011 / ICPP-DXMLP 2009).

The package is organised as a layered system:

* :mod:`repro.xmlmodel` -- pure-Python XML parsing, trees, and paths.
* :mod:`repro.treetuples` -- decomposition of XML trees into tree tuples.
* :mod:`repro.text` -- text preprocessing, sparse vectors and ttf.itf weighting.
* :mod:`repro.transactions` -- the transactional model over tree-tuple items.
* :mod:`repro.similarity` -- structural / content / combined similarities and
  the transactional gamma-Jaccard similarity.
* :mod:`repro.core` -- XK-means (centralized), CXK-means (collaborative
  distributed) and PK-means (non-collaborative parallel baseline).
* :mod:`repro.network` -- simulated P2P network, cost model and a
  multiprocessing execution engine.
* :mod:`repro.datasets` -- synthetic re-creations of the DBLP, IEEE,
  Shakespeare and Wikipedia evaluation corpora.
* :mod:`repro.evaluation` -- F-measure and other external validity indices.
* :mod:`repro.experiments` -- drivers that regenerate every table and figure
  of the paper's evaluation section.
"""

from repro.xmlmodel import XMLTree, XMLNode, parse_xml
from repro.treetuples import extract_tree_tuples, TreeTuple
from repro.transactions import Transaction, TreeTupleItem, TransactionDataset
from repro.similarity import (
    structural_similarity,
    content_similarity,
    item_similarity,
    transaction_similarity,
    SimilarityConfig,
)
from repro.core import (
    ClusteringConfig,
    XKMeans,
    CXKMeans,
    PKMeans,
    ClusteringResult,
)
from repro.evaluation import overall_f_measure

__version__ = "1.0.0"

__all__ = [
    "XMLTree",
    "XMLNode",
    "parse_xml",
    "extract_tree_tuples",
    "TreeTuple",
    "Transaction",
    "TreeTupleItem",
    "TransactionDataset",
    "structural_similarity",
    "content_similarity",
    "item_similarity",
    "transaction_similarity",
    "SimilarityConfig",
    "ClusteringConfig",
    "XKMeans",
    "CXKMeans",
    "PKMeans",
    "ClusteringResult",
    "overall_f_measure",
    "__version__",
]
