"""Command line interface for the CXK-means reproduction.

The ``cxk`` console script exposes the main workflows:

* ``cxk cluster`` -- cluster an XML directory (or a synthetic corpus) with
  CXK-means / PK-means / XK-means and print the resulting clusters
  (``--save-model DIR`` persists the fitted model for serving);
* ``cxk classify`` -- classify XML documents against a saved model
  (``--stdin`` streams file paths line by line with bounded memory);
* ``cxk stream`` -- ingest XML documents incrementally into a saved model
  (chunked streaming clustering, ``--out-of-core`` block store, periodic
  checkpoints);
* ``cxk serve`` -- serve a saved model (stdin line protocol or HTTP), or
  serve every active model of a registry through the async multi-model
  router (``--registry``, with ``--workers N`` for a process pool);
* ``cxk models`` -- catalog fitted models in the durable registry
  (``list`` / ``show`` / ``publish`` / ``retire``);
* ``cxk figure7`` / ``cxk table1`` / ``cxk table2`` / ``cxk figure8`` --
  regenerate the paper's tables and figures as text reports;
* ``cxk datasets`` -- print the profile of the synthetic corpora.

Every experiment command accepts ``--scale`` so users can trade fidelity for
runtime; the defaults keep each command within a few minutes on a laptop.
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys
from typing import List, Optional

from repro.core.config import ClusteringConfig
from repro.core.partition import PartitioningScheme, partition
from repro.datasets.registry import DATASET_NAMES, get_corpus, get_dataset
from repro.evaluation.fmeasure import overall_f_measure
from repro.evaluation.reporting import format_table
from repro.experiments.figure7 import Figure7Config, run_figure7
from repro.experiments.figure8 import Figure8Config, run_figure8
from repro.experiments.runner import make_algorithm, precompute_similarity
from repro.experiments.table1 import AccuracyTableConfig, run_table1
from repro.experiments.table2 import run_table2
from repro.similarity.backend import (
    DEFAULT_BACKEND,
    BackendUnavailableError,
    registered_backends,
    validate_backend_spec,
)
from repro.similarity.item import SimilarityConfig
from repro.transactions.builder import build_dataset
from repro.xmlmodel.parser import parse_xml_file


def _add_backend_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--backend",
        default=DEFAULT_BACKEND,
        metavar="NAME[:OPTIONS]",
        help="similarity backend for the clustering hot path "
        f"(registered: {', '.join(registered_backends())}; specs like "
        "'numpy:block=1024', 'sharded:4' or 'torch:cuda' select "
        "options/devices; unknown specs list the registered alternatives)",
    )
    parser.add_argument(
        "--shard-workers",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for the sharded backend "
        "(only with --backend sharded; default: one per CPU)",
    )
    parser.add_argument(
        "--batch-block-items",
        type=int,
        default=None,
        metavar="N",
        help="tile budget (items per side) of the batched similarity "
        "kernels; bounds peak kernel scratch memory regardless of corpus "
        "size (0 = unbounded, default: backend default; results are "
        "bit-exact for every budget)",
    )
    parser.add_argument(
        "--refine-workers",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for cluster-sharded representative "
        "refinement (one cluster per worker; default: serial refinement)",
    )
    parser.add_argument(
        "--corpus-cache",
        default=None,
        metavar="DIR",
        help="directory of the persistent compiled-corpus store: the first "
        "run exports the compiled corpus there and later runs of the same "
        "corpus + similarity config attach it zero-copy (mmap) instead of "
        "recompiling; stale entries are invalidated by content fingerprint "
        "(default: off)",
    )


def _add_network_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--network",
        default="sim",
        choices=["sim", "real"],
        help="transport of the collaborative rounds: 'sim' runs the peers "
        "sequentially on the simulated network (cost-model timing), 'real' "
        "runs every peer as a concurrent process over localhost TCP and "
        "reports measured wire bytes and wall-clock next to the cost-model "
        "predictions (CXK-means only; default: sim)",
    )
    parser.add_argument(
        "--network-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-round deadline of the real transport: a stalled or dead "
        "peer fails the run with an actionable error within this bound "
        "instead of hanging (default: %(default)s -> the ClusteringConfig "
        "default)",
    )


def _resolve_network_timeout(args: argparse.Namespace) -> Optional[float]:
    """Validate and return ``--network-timeout`` (None = config default)."""
    network_timeout = getattr(args, "network_timeout", None)
    if network_timeout is not None and network_timeout <= 0:
        raise SystemExit(
            f"--network-timeout must be positive, got {network_timeout}"
        )
    return network_timeout


def _resolve_backend(args: argparse.Namespace) -> str:
    """Combine ``--backend`` and ``--shard-workers`` into a validated spec.

    Validation happens here -- config-resolution time -- so a misspelled
    backend exits with the registered alternatives and a backend whose
    optional dependency is missing (``--backend torch`` without PyTorch,
    ``--backend torch:cuda`` without a GPU) raises
    :class:`~repro.similarity.backend.BackendUnavailableError` with an
    actionable message before any corpus is loaded or fit is started.
    """
    backend = args.backend
    shard_workers = getattr(args, "shard_workers", None)
    if shard_workers is not None:
        if backend != "sharded":
            raise SystemExit("--shard-workers requires --backend sharded")
        if shard_workers < 1:
            raise SystemExit(
                f"--shard-workers must be positive, got {shard_workers}"
            )
        backend = f"sharded:{shard_workers}"
    try:
        # ValueError (unknown name, malformed options) and
        # BackendUnavailableError (missing optional dependency, unusable
        # device) both exit cleanly with validate_backend_spec's message --
        # the same text a ClusteringConfig constructed with this spec
        # raises, so CLI and library users see identical diagnostics
        return validate_backend_spec(backend)
    except (ValueError, BackendUnavailableError) as error:
        raise SystemExit(f"error: {error}") from error


def _resolve_batch_block_items(args: argparse.Namespace) -> Optional[int]:
    """Validate and return ``--batch-block-items`` (None = backend default)."""
    batch_block_items = getattr(args, "batch_block_items", None)
    if batch_block_items is not None and batch_block_items < 0:
        raise SystemExit(
            "--batch-block-items must be >= 0 (0 = unbounded), got "
            f"{batch_block_items}"
        )
    return batch_block_items


def _resolve_refine_workers(args: argparse.Namespace) -> Optional[int]:
    """Validate and return the ``--refine-workers`` value (None = serial)."""
    refine_workers = getattr(args, "refine_workers", None)
    if refine_workers is not None and refine_workers < 1:
        raise SystemExit(
            f"--refine-workers must be positive, got {refine_workers}"
        )
    return refine_workers


def _add_common_experiment_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--scale", type=float, default=0.5, help="corpus scale factor")
    _add_backend_argument(parser)
    parser.add_argument("--gamma", type=float, default=0.85, help="gamma threshold")
    parser.add_argument(
        "--nodes",
        type=int,
        nargs="+",
        default=[1, 3, 5, 7, 9],
        help="node counts to sweep",
    )
    parser.add_argument("--seed", type=int, default=0, help="random seed")
    parser.add_argument(
        "--max-iterations", type=int, default=6, help="maximum collaborative rounds"
    )


def _cmd_datasets(args: argparse.Namespace) -> int:
    rows = []
    for name in DATASET_NAMES:
        corpus = get_corpus(name, scale=args.scale, seed=args.seed)
        dataset = corpus.to_dataset()
        summary = dataset.summary()
        rows.append(
            [
                name,
                corpus.document_count(),
                summary["transactions"],
                summary["distinct_items"],
                summary["vocabulary"],
                corpus.class_counts.get("content", ""),
                corpus.class_counts.get("structure", ""),
                corpus.class_counts.get("hybrid", ""),
            ]
        )
    print(
        format_table(
            [
                "corpus",
                "documents",
                "transactions",
                "items",
                "vocabulary",
                "content classes",
                "structure classes",
                "hybrid classes",
            ],
            rows,
            title=f"Synthetic corpora (scale={args.scale})",
        )
    )
    return 0


def _load_xml_directory(path: str) -> List:
    files = sorted(glob.glob(os.path.join(path, "**", "*.xml"), recursive=True))
    if not files:
        raise SystemExit(f"no .xml files found under {path}")
    return [parse_xml_file(file) for file in files]


def _cmd_cluster(args: argparse.Namespace) -> int:
    # resolve (and validate) the backend before loading any corpus, so an
    # unavailable backend fails immediately with its actionable message
    backend = _resolve_backend(args)
    if args.registry and not args.save_model:
        raise SystemExit("--registry requires --save-model DIR")
    network = getattr(args, "network", "sim")
    network_timeout = _resolve_network_timeout(args)
    if network == "real" and args.algorithm != "cxk":
        raise SystemExit(
            "--network real is implemented for CXK-means only; drop the "
            "flag or use --algorithm cxk"
        )
    if args.xml_dir:
        trees = _load_xml_directory(args.xml_dir)
        dataset = build_dataset(os.path.basename(args.xml_dir.rstrip("/")), trees)
        reference = None
    else:
        dataset = get_dataset(args.corpus, scale=args.scale, seed=args.seed)
        reference = dataset.labels_for(args.goal) if args.goal in dataset.labelings else None

    k = args.k or (len(set(reference.values())) if reference else 4)
    config = ClusteringConfig(
        k=k,
        similarity=SimilarityConfig(f=args.f, gamma=args.gamma),
        seed=args.seed,
        max_iterations=args.max_iterations,
        backend=backend,
        batch_block_items=_resolve_batch_block_items(args),
        refine_workers=_resolve_refine_workers(args),
        corpus_cache_dir=args.corpus_cache,
        network=network,
        **({"network_timeout": network_timeout} if network_timeout is not None else {}),
    )
    algorithm = make_algorithm(args.algorithm, config)
    # populate the tag-path cache (and compile the backend corpus) up front,
    # the strategy prescribed by the paper's complexity analysis (Sec. 4.3.2);
    # with --corpus-cache the persistent store takes over and a warm attach
    # skips compilation entirely
    store_status = precompute_similarity(algorithm, dataset.transactions)
    if args.algorithm.lower().startswith("xk"):
        result = algorithm.fit(dataset.transactions)
    else:
        scheme = PartitioningScheme(args.partitioning)
        parts = partition(dataset.transactions, args.peers, scheme, seed=args.seed)
        result = algorithm.fit(parts)

    cache_stats = algorithm.engine.cache.stats()
    print(f"algorithm : {result.metadata.get('algorithm')}")
    print(f"backend   : {backend}")
    network_stats = result.network or {}
    if network == "real":
        print(
            "network   : real (wire_bytes={wire} control_bytes={control} "
            "measured_wall={wall:.2f}s)".format(
                wire=int(network_stats.get("wire_bytes", 0)),
                control=int(network_stats.get("control_bytes", 0)),
                wall=float(network_stats.get("measured_wall_seconds", 0.0)),
            )
        )
    else:
        print(f"network   : {network}")
    print(
        "cache     : entries={entries} hits={hits} misses={misses} "
        "precomputed={precomputed}".format(**cache_stats)
    )
    print(
        "store     : {store} (compiled {compiled} transactions)".format(
            store=store_status.get("store", "off"),
            compiled=store_status.get("compiled", 0),
        )
    )
    print(f"clusters  : {result.k}  (trash: {result.trash_size()} transactions)")
    print(f"iterations: {result.iterations} (converged: {result.converged})")
    print(f"elapsed   : {result.elapsed_seconds:.2f}s")
    if result.simulated_seconds is not None:
        print(f"simulated : {result.simulated_seconds:.2f}s over {args.peers} peers")
    if reference is not None:
        print(f"F-measure : {overall_f_measure(result.partition(), reference):.3f}")
    if args.save_model:
        from repro.core.model_store import ModelStoreError, save_model

        registry = None
        if args.registry:
            from repro.store import open_registry

            registry = open_registry(args.registry)
        try:
            manifest = save_model(
                args.save_model,
                result,
                config,
                dataset=dataset,
                engine=algorithm.engine,
                registry=registry,
                model_name=args.model_name,
            )
            print(f"model     : saved -> {args.save_model}")
            published = manifest.get("registry")
            if published:
                print(
                    "registry  : published {name} v{version} "
                    "({fingerprint})".format(
                        name=published["name"],
                        version=published["version"],
                        fingerprint=published["fingerprint"][:12],
                    )
                )
        except ModelStoreError as error:
            # persistence is best effort: the clustering itself succeeded
            print(f"model     : error ({error})")
    rows = [
        [cluster.cluster_id, cluster.size(), ", ".join(cluster.member_ids()[:4]) + ("..." if cluster.size() > 4 else "")]
        for cluster in result.clusters
    ]
    print(format_table(["cluster", "size", "sample members"], rows))
    return 0


def _load_cluster_model(args: argparse.Namespace):
    """Load the model named by ``--model`` or exit with a clean message."""
    from repro.core.model_store import ModelStoreError, load_model

    try:
        return load_model(args.model, backend=args.backend)
    except (ModelStoreError, BackendUnavailableError, ValueError) as error:
        raise SystemExit(f"error: {error}") from error


def _print_model_header(model) -> None:
    """Print the shared model banner of ``classify`` / ``serve``."""
    stats = model.stats()
    print(f"model     : {model.directory}")
    print(f"backend   : {model.engine.backend_name}")
    print(
        "store     : {store} (compiled {compiled} transactions)".format(
            store=stats["store"], compiled=stats["corpus_compile_count"]
        )
    )


def _iter_classify_paths(args: argparse.Namespace):
    """Yield the file paths to classify, one at a time.

    With ``--stdin``, paths are read from standard input *line by line* --
    each path is yielded (and classified) as soon as its line arrives, so
    an arbitrarily long pipe is processed with bounded memory instead of
    being slurped up front.  Blank lines are skipped.
    """
    for path in args.files:
        yield path
    if getattr(args, "stdin", False):
        for line in sys.stdin:
            path = line.strip()
            if path:
                yield path


def _cmd_classify(args: argparse.Namespace) -> int:
    if not args.files and not args.stdin:
        raise SystemExit("classify needs FILE arguments or --stdin")
    model = _load_cluster_model(args)
    try:
        _print_model_header(model)
        for path in _iter_classify_paths(args):
            try:
                result = model.classify_file(path)
            except OSError as error:
                raise SystemExit(f"error: {error}") from error
            print(
                f"{path}: cluster={result.cluster_id} "
                f"score={result.score:.4f} transactions={result.transactions}",
                flush=True,
            )
    finally:
        model.close()
    return 0


def _iter_stream_chunks(args: argparse.Namespace, chunk_size: int):
    """Yield ``(name, transactions)`` ingestion chunks for ``cxk stream``.

    Corpus mode (``--corpus``) replays a synthetic corpus in order with its
    frozen whole-corpus term statistics, so the streamed clustering is
    comparable to (and at one big chunk bit-exact with) the batch fit.
    File/stdin mode parses XML documents chunk by chunk and builds each
    chunk's transactions with :func:`build_dataset` -- content weighting is
    then per-chunk rather than corpus-wide (a documented approximation of
    the collection statistics a batch build would use); paths stream
    through bounded memory, one chunk of parsed trees at a time.
    """
    if args.corpus:
        dataset = get_dataset(args.corpus, scale=args.scale, seed=args.seed)
        transactions = dataset.transactions
        for start in range(0, len(transactions), chunk_size):
            yield args.corpus, transactions[start : start + chunk_size]
        return

    def paths():
        for path in args.files:
            yield path
        if args.stdin:
            for line in sys.stdin:
                path = line.strip()
                if path:
                    yield path

    pending: List[str] = []
    index = 0
    for path in paths():
        pending.append(path)
        if len(pending) >= chunk_size:
            trees = [parse_xml_file(file) for file in pending]
            yield f"chunk-{index}", build_dataset(f"chunk-{index}", trees).transactions
            pending, index = [], index + 1
    if pending:
        trees = [parse_xml_file(file) for file in pending]
        yield f"chunk-{index}", build_dataset(f"chunk-{index}", trees).transactions


def _cmd_stream(args: argparse.Namespace) -> int:
    backend = _resolve_backend(args)
    if not args.corpus and not args.files and not args.stdin:
        raise SystemExit("stream needs --corpus NAME, FILE arguments or --stdin")
    if args.corpus and (args.files or args.stdin):
        raise SystemExit("--corpus replaces FILE/--stdin input; use one or the other")
    if args.checkpoint_every is not None and args.checkpoint_every < 1:
        raise SystemExit(
            f"--checkpoint-every must be positive, got {args.checkpoint_every}"
        )
    from repro.core.model_store import ModelStoreError, save_model
    from repro.core.streaming import StreamingClusterer

    config = ClusteringConfig(
        k=args.k,
        similarity=SimilarityConfig(f=args.f, gamma=args.gamma),
        seed=args.seed,
        max_iterations=args.max_iterations,
        backend=backend,
        batch_block_items=_resolve_batch_block_items(args),
        refine_workers=_resolve_refine_workers(args),
        streaming=True,
        chunk_size=args.chunk_size,
        retain_threshold=args.retain_threshold,
        drift_threshold=args.drift_threshold,
    )
    store = None
    if args.out_of_core:
        from repro.similarity.corpus_store import BlockCorpusStore

        store = BlockCorpusStore.create(
            os.path.join(args.model, "blocks"), config.similarity
        )
    clusterer = StreamingClusterer(config, store=store)
    print(f"algorithm : Streaming-XK-means (k={args.k}, chunk={args.chunk_size})")
    print(f"backend   : {backend}")
    print(
        "blocks    : {mode}".format(
            mode=f"out-of-core -> {store.directory}" if store else "in-memory"
        )
    )

    def save_checkpoint(result, label: str) -> None:
        if store is not None:
            # record the chain linkage (fingerprint + directory) in the
            # manifest so `classify`/`serve` can warm-attach the blocks
            clusterer.engine.backend.attach_store(store)
        try:
            save_model(args.model, result, config, engine=clusterer.engine)
            stats = clusterer.stats
            print(
                f"checkpoint: saved -> {args.model} "
                f"({label}, chunks={stats.chunks_ingested}, "
                f"transactions={stats.transactions_ingested}, "
                f"retained={stats.retained}, "
                f"re_refinements={stats.re_refinements})",
                flush=True,
            )
        except ModelStoreError as error:
            print(f"checkpoint: error ({error})", flush=True)

    chunks_seen = 0
    for name, chunk in _iter_stream_chunks(args, args.chunk_size):
        clusterer.ingest(chunk)
        chunks_seen += 1
        if (
            args.checkpoint_every
            and clusterer.bootstrapped
            and chunks_seen % args.checkpoint_every == 0
        ):
            save_checkpoint(clusterer.checkpoint_result(), name)
    try:
        result = clusterer.finalize()
    except RuntimeError as error:
        raise SystemExit(f"error: {error}") from error
    save_checkpoint(result, "final")
    stats = clusterer.stats
    print(f"chunks    : {stats.chunks_ingested} post-bootstrap")
    print(f"ingested  : {stats.transactions_ingested} transactions")
    print(
        f"refine    : {stats.re_refinements} re-refinements "
        f"(churn {stats.churn:.2f}, retained peak {stats.retained_peak})"
    )
    print(f"clusters  : {result.k}  (trash: {result.trash_size()} transactions)")
    print(f"elapsed   : {result.elapsed_seconds:.2f}s")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    if args.workers is not None and args.workers < 0:
        raise SystemExit(f"--workers must be >= 0, got {args.workers}")
    if args.registry or args.workers is not None:
        return _cmd_serve_async(args)
    if not args.model:
        raise SystemExit("serve needs --model DIR (or --registry PATH)")
    model = _load_cluster_model(args)
    try:
        from repro.serving import DEFAULT_REQUEST_TIMEOUT, serve_http, serve_stdin

        _print_model_header(model)
        if args.port is None:
            print("serving   : stdin (one XML file path per line)")
            serve_stdin(model, sys.stdin, sys.stdout)
        else:
            print(f"serving   : http://{args.host}:{args.port} (POST /classify)")
            serve_http(
                model, host=args.host, port=args.port,
                max_requests=args.max_requests,
                request_timeout=(
                    args.timeout if args.timeout is not None
                    else DEFAULT_REQUEST_TIMEOUT
                ),
            )
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        pass
    finally:
        model.close()
    return 0


def _cmd_serve_async(args: argparse.Namespace) -> int:
    """The ``serve`` async path: registry routing and/or a worker pool."""
    from repro.serving import DEFAULT_REQUEST_TIMEOUT, serve_async
    from repro.store.registry import RegistryError

    if args.port is None:
        raise SystemExit(
            "the async server is HTTP-only: --registry/--workers need --port"
        )
    if args.registry:
        if args.model:
            raise SystemExit(
                "--registry routes published models; drop --model or use "
                "--models NAME to restrict the routes"
            )
        registry_path, model_dirs = args.registry, None
    else:
        if not args.model:
            raise SystemExit("--workers without --registry needs --model DIR")
        if args.models:
            raise SystemExit("--models filters registry routes; use --registry")
        registry_path = None
        model_dirs = {os.path.basename(os.path.normpath(args.model)): args.model}
    routes = args.models or (["<active models>"] if registry_path else list(model_dirs))
    print(f"serving   : http://{args.host}:{args.port} (async router)")
    print(f"routes    : {', '.join(routes)}  (POST /models/<name>/classify)")
    print(f"workers   : {args.workers or 0} (0 = in-process classify)")
    try:
        serve_async(
            registry_path=registry_path,
            model_names=args.models,
            model_dirs=model_dirs,
            host=args.host,
            port=args.port,
            workers=args.workers or 0,
            backend=args.backend,
            poll_interval=args.poll_interval,
            max_requests=args.max_requests,
            request_timeout=(
                args.timeout if args.timeout is not None else DEFAULT_REQUEST_TIMEOUT
            ),
        )
    except KeyboardInterrupt:  # pragma: no cover - interactive shutdown
        pass
    except (RegistryError, BackendUnavailableError, ValueError) as error:
        raise SystemExit(f"error: {error}") from error
    return 0


def _open_cli_registry(args: argparse.Namespace):
    """Open the registry named by ``--registry`` for a ``models`` command."""
    from repro.store import open_registry
    from repro.store.registry import RegistryError

    try:
        return open_registry(args.registry)
    except RegistryError as error:
        raise SystemExit(f"error: {error}") from error


def _print_model_records(records) -> None:
    """Render registry records as the shared ``models`` table."""
    rows = [
        [
            record.name,
            record.version,
            record.status,
            record.fingerprint[:12],
            record.created_at,
            record.directory,
        ]
        for record in records
    ]
    print(
        format_table(
            ["name", "version", "status", "fingerprint", "created", "directory"],
            rows,
        )
    )


def _cmd_models(args: argparse.Namespace) -> int:
    """Handle ``cxk models list|show|publish|retire``."""
    from repro.store.registry import RegistryError

    registry = _open_cli_registry(args)
    try:
        if args.models_command == "list":
            records = registry.list_models(
                args.name, include_retired=args.all
            )
            if not records:
                scope = f"name {args.name!r}" if args.name else "registry"
                print(f"no models cataloged for {scope} ({args.registry})")
                return 0
            _print_model_records(records)
        elif args.models_command == "show":
            record = registry.show(args.name, args.version)
            print(json.dumps(record.to_dict(), indent=2, sort_keys=True))
        elif args.models_command == "publish":
            record = registry.publish(args.name, args.directory)
            print(
                f"published {record.name} v{record.version} "
                f"({record.fingerprint[:12]}) -> {record.directory}"
            )
        else:  # retire
            record = registry.retire(args.name, args.version)
            print(f"retired {record.name} v{record.version}")
    except RegistryError as error:
        raise SystemExit(f"error: {error}") from error
    return 0


def _cmd_figure7(args: argparse.Namespace) -> int:
    config = Figure7Config(
        node_counts=tuple(args.nodes),
        scales=(args.scale, args.scale / 2.0),
        gamma=args.gamma,
        seeds=(args.seed,),
        max_iterations=args.max_iterations,
        backend=_resolve_backend(args),
        batch_block_items=_resolve_batch_block_items(args),
        refine_workers=_resolve_refine_workers(args),
        corpus_cache_dir=args.corpus_cache,
        network=getattr(args, "network", "sim"),
        network_timeout=_resolve_network_timeout(args),
    )
    print(run_figure7(config).report())
    return 0


def _cmd_figure8(args: argparse.Namespace) -> int:
    config = Figure8Config(
        node_counts=tuple(args.nodes),
        scale=args.scale,
        gamma=args.gamma,
        seeds=(args.seed,),
        max_iterations=args.max_iterations,
        backend=_resolve_backend(args),
        batch_block_items=_resolve_batch_block_items(args),
        refine_workers=_resolve_refine_workers(args),
        corpus_cache_dir=args.corpus_cache,
    )
    print(run_figure8(config).report())
    return 0


def _cmd_table(args: argparse.Namespace, table_number: int) -> int:
    config = AccuracyTableConfig(
        node_counts=tuple(args.nodes),
        gamma=args.gamma,
        scale=args.scale,
        seeds=(args.seed,),
        max_iterations=args.max_iterations,
        goals=tuple(args.goals),
        backend=_resolve_backend(args),
        batch_block_items=_resolve_batch_block_items(args),
        refine_workers=_resolve_refine_workers(args),
        corpus_cache_dir=args.corpus_cache,
        network=getattr(args, "network", "sim"),
        network_timeout=_resolve_network_timeout(args),
    )
    if table_number == 1:
        result = run_table1(config)
    else:
        result = run_table2(config)
    print(result.report(table_number=table_number))
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="cxk",
        description="Collaborative clustering of XML documents (CXK-means) reproduction",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    datasets_parser = subparsers.add_parser("datasets", help="describe the synthetic corpora")
    datasets_parser.add_argument("--scale", type=float, default=0.5)
    datasets_parser.add_argument("--seed", type=int, default=0)
    datasets_parser.set_defaults(handler=_cmd_datasets)

    cluster_parser = subparsers.add_parser("cluster", help="cluster XML documents")
    cluster_parser.add_argument("--corpus", default="DBLP", help="synthetic corpus name")
    cluster_parser.add_argument("--xml-dir", default=None, help="directory of .xml files to cluster instead")
    cluster_parser.add_argument("--algorithm", default="cxk", choices=["cxk", "pk", "xk"])
    cluster_parser.add_argument("--goal", default="hybrid", choices=["content", "hybrid", "structure"])
    cluster_parser.add_argument("--k", type=int, default=None, help="number of clusters")
    cluster_parser.add_argument("--peers", type=int, default=3, help="number of peers")
    cluster_parser.add_argument("--partitioning", default="equal", choices=["equal", "unequal"])
    cluster_parser.add_argument("--f", type=float, default=0.5, help="structure/content blend factor")
    cluster_parser.add_argument("--gamma", type=float, default=0.85)
    cluster_parser.add_argument("--scale", type=float, default=0.5)
    cluster_parser.add_argument("--seed", type=int, default=0)
    cluster_parser.add_argument("--max-iterations", type=int, default=6)
    cluster_parser.add_argument(
        "--save-model",
        default=None,
        metavar="DIR",
        help="persist the fitted model (representatives, config, registries, "
        "corpus-store linkage) to DIR for later `cxk classify` / `cxk serve`",
    )
    cluster_parser.add_argument(
        "--registry",
        default=None,
        metavar="PATH",
        help="also publish the saved model into this sqlite registry "
        "(requires --save-model; see `cxk models`)",
    )
    cluster_parser.add_argument(
        "--model-name",
        default=None,
        metavar="NAME",
        help="registry name to publish under (default: the --save-model "
        "directory's basename)",
    )
    _add_backend_argument(cluster_parser)
    _add_network_arguments(cluster_parser)
    cluster_parser.set_defaults(handler=_cmd_cluster)

    classify_parser = subparsers.add_parser(
        "classify", help="classify XML documents against a saved model"
    )
    classify_parser.add_argument(
        "--model", required=True, metavar="DIR", help="model directory (from --save-model)"
    )
    classify_parser.add_argument(
        "--backend",
        default=None,
        metavar="NAME[:OPTIONS]",
        help="override the backend spec recorded in the model manifest",
    )
    classify_parser.add_argument(
        "--stdin",
        action="store_true",
        help="additionally read file paths from standard input, one per "
        "line, classifying each as it arrives (bounded memory on long "
        "pipes)",
    )
    classify_parser.add_argument("files", nargs="*", metavar="FILE", help="XML files")
    classify_parser.set_defaults(handler=_cmd_classify)

    stream_parser = subparsers.add_parser(
        "stream",
        help="ingest XML documents incrementally into a saved model "
        "(streaming out-of-core clustering)",
    )
    stream_parser.add_argument(
        "--model",
        required=True,
        metavar="DIR",
        help="model directory to write (checkpoints and the final model "
        "are persisted here for `cxk classify` / `cxk serve`)",
    )
    stream_parser.add_argument(
        "--corpus",
        default=None,
        metavar="NAME",
        help="replay a synthetic corpus in chunks instead of reading files",
    )
    stream_parser.add_argument("--scale", type=float, default=0.5)
    stream_parser.add_argument("--seed", type=int, default=0)
    stream_parser.add_argument(
        "--stdin",
        action="store_true",
        help="additionally read XML file paths from standard input, one "
        "per line, ingesting chunk by chunk with bounded memory",
    )
    stream_parser.add_argument("--k", type=int, default=4, help="number of clusters")
    stream_parser.add_argument("--f", type=float, default=0.5)
    stream_parser.add_argument("--gamma", type=float, default=0.85)
    stream_parser.add_argument("--max-iterations", type=int, default=6)
    stream_parser.add_argument(
        "--chunk-size",
        type=int,
        default=32,
        metavar="N",
        help="transactions per ingested chunk (default: %(default)s)",
    )
    stream_parser.add_argument(
        "--retain-threshold",
        type=float,
        default=0.25,
        metavar="S",
        help="similarity below which a transaction is parked in the "
        "retained set instead of committed (default: %(default)s)",
    )
    stream_parser.add_argument(
        "--drift-threshold",
        type=float,
        default=0.5,
        metavar="D",
        help="retained-set fill fraction that triggers a bounded "
        "re-refinement (default: %(default)s)",
    )
    stream_parser.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        metavar="N",
        help="persist a light checkpoint of the model every N chunks "
        "(default: only the final model is saved)",
    )
    stream_parser.add_argument(
        "--out-of-core",
        action="store_true",
        help="append each chunk to a block-structured corpus store under "
        "<model>/blocks; older blocks stay mmap-resident on disk and only "
        "the active tail is held in memory",
    )
    stream_parser.add_argument("files", nargs="*", metavar="FILE", help="XML files")
    _add_backend_argument(stream_parser)
    stream_parser.set_defaults(handler=_cmd_stream)

    serve_parser = subparsers.add_parser(
        "serve",
        help="serve a saved model (stdin/HTTP) or a registry's models (async)",
    )
    serve_parser.add_argument(
        "--model", default=None, metavar="DIR", help="model directory (from --save-model)"
    )
    serve_parser.add_argument(
        "--registry",
        default=None,
        metavar="PATH",
        help="route every active model of this registry through the async "
        "server (POST /models/<name>/classify; restrict with --models)",
    )
    serve_parser.add_argument(
        "--models",
        nargs="+",
        default=None,
        metavar="NAME",
        help="restrict --registry routing to these published names",
    )
    serve_parser.add_argument(
        "--workers",
        type=int,
        default=None,
        metavar="N",
        help="classify on a pool of N worker processes (async server; "
        "0 = classify in-process; default: the single-model wsgiref path)",
    )
    serve_parser.add_argument(
        "--poll-interval",
        type=float,
        default=None,
        metavar="SECONDS",
        help="async server: re-read the registry this often and hot-reload "
        "fingerprint-changed models (default: reload only on POST /reload)",
    )
    serve_parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-connection request timeout; a stalled client is dropped "
        "after this bound instead of blocking the server (default: 30)",
    )
    serve_parser.add_argument(
        "--backend",
        default=None,
        metavar="NAME[:OPTIONS]",
        help="override the backend spec recorded in the model manifest",
    )
    serve_parser.add_argument(
        "--port",
        type=int,
        default=None,
        metavar="N",
        help="serve HTTP on this port (default: stdin line protocol)",
    )
    serve_parser.add_argument("--host", default="127.0.0.1", help="HTTP bind host")
    serve_parser.add_argument(
        "--max-requests",
        type=int,
        default=None,
        metavar="N",
        help="stop after N HTTP requests (smoke runs; default: serve forever)",
    )
    serve_parser.set_defaults(handler=_cmd_serve)

    models_parser = subparsers.add_parser(
        "models", help="catalog fitted models in the durable registry"
    )
    models_parser.add_argument(
        "--registry",
        required=True,
        metavar="PATH",
        help="path of the sqlite registry database (created on first use)",
    )
    models_subparsers = models_parser.add_subparsers(
        dest="models_command", required=True
    )
    models_list = models_subparsers.add_parser(
        "list", help="list cataloged models (active versions by default)"
    )
    models_list.add_argument(
        "name", nargs="?", default=None, help="restrict to one model name"
    )
    models_list.add_argument(
        "--all", action="store_true", help="include retired versions"
    )
    models_show = models_subparsers.add_parser(
        "show", help="print one version's full record as JSON"
    )
    models_show.add_argument("name", help="model name")
    models_show.add_argument(
        "--version", type=int, default=None, help="version (default: active)"
    )
    models_publish = models_subparsers.add_parser(
        "publish", help="catalog a saved model directory under a name"
    )
    models_publish.add_argument("name", help="model name to publish under")
    models_publish.add_argument(
        "directory", metavar="DIR", help="model directory (from --save-model)"
    )
    models_retire = models_subparsers.add_parser(
        "retire", help="retire a version (status flip; never deletes)"
    )
    models_retire.add_argument("name", help="model name")
    models_retire.add_argument(
        "--version", type=int, default=None, help="version (default: active)"
    )
    models_parser.set_defaults(handler=_cmd_models)

    figure7_parser = subparsers.add_parser("figure7", help="reproduce Figure 7")
    _add_common_experiment_arguments(figure7_parser)
    # Figure 8 compares CXK-means against PK-means, which only runs on the
    # simulated network -- the transport switch is deliberately absent there.
    _add_network_arguments(figure7_parser)
    figure7_parser.set_defaults(handler=_cmd_figure7)

    figure8_parser = subparsers.add_parser("figure8", help="reproduce Figure 8")
    _add_common_experiment_arguments(figure8_parser)
    figure8_parser.set_defaults(handler=_cmd_figure8)

    for number in (1, 2):
        table_parser = subparsers.add_parser(f"table{number}", help=f"reproduce Table {number}")
        _add_common_experiment_arguments(table_parser)
        _add_network_arguments(table_parser)
        table_parser.add_argument(
            "--goals",
            nargs="+",
            default=["content", "hybrid", "structure"],
            choices=["content", "hybrid", "structure"],
        )
        table_parser.set_defaults(handler=lambda args, n=number: _cmd_table(args, n))

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point of the ``cxk`` console script."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
